package tensor

// Float32 row kernels backing the CPT-GPT decode fast path. Generation at
// scale is memory-bandwidth bound: every decode step streams the full weight
// set and the KV cache through the core once per stream, so halving the
// element width roughly halves the traffic. These kernels are scalar Go but
// written for instruction-level parallelism (independent partial
// accumulators, contiguous panel access); their accumulation order is fixed,
// so results are deterministic for a given input regardless of the worker
// pool's degree — the same contract the float64 kernels keep.

// DotF32 returns the dot product of a and b over len(a) elements, b must be
// at least as long. Accumulation runs in eight independent partial sums
// (scalar FP add/mul chains are latency-bound, so independent accumulators
// are what keep the ports busy) combined pairwise at the end; the order is
// fixed, so the result is deterministic (though not equal to a
// single-accumulator reduction).
func DotF32(a, b []float32) float32 {
	n := len(a)
	b = b[:n]
	var s0, s1, s2, s3, s4, s5, s6, s7 float32
	i := 0
	for ; i+8 <= n; i += 8 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
		s4 += a[i+4] * b[i+4]
		s5 += a[i+5] * b[i+5]
		s6 += a[i+6] * b[i+6]
		s7 += a[i+7] * b[i+7]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))
}

// Dot4F32 computes the dot products of x against four weight rows in one
// sweep — the 4-row register block of MatVecF32. Each x element is loaded
// once for all four rows, and each row accumulates in two chains of paired
// multiply-adds (eight independent chains total), which is where the scalar
// FP ports saturate on this loop shape. The accumulation order is fixed, so
// results are deterministic.
func Dot4F32(x, w0, w1, w2, w3 []float32) (r0, r1, r2, r3 float32) {
	n := len(x)
	w0 = w0[:n]
	w1 = w1[:n]
	w2 = w2[:n]
	w3 = w3[:n]
	var a0, a1, b0, b1, c0, c1, d0, d1 float32
	i := 0
	for ; i+4 <= n; i += 4 {
		x0, x1, x2, x3 := x[i], x[i+1], x[i+2], x[i+3]
		a0 += x0*w0[i] + x2*w0[i+2]
		a1 += x1*w0[i+1] + x3*w0[i+3]
		b0 += x0*w1[i] + x2*w1[i+2]
		b1 += x1*w1[i+1] + x3*w1[i+3]
		c0 += x0*w2[i] + x2*w2[i+2]
		c1 += x1*w2[i+1] + x3*w2[i+3]
		d0 += x0*w3[i] + x2*w3[i+2]
		d1 += x1*w3[i+1] + x3*w3[i+3]
	}
	for ; i < n; i++ {
		a0 += x[i] * w0[i]
		b0 += x[i] * w1[i]
		c0 += x[i] * w2[i]
		d0 += x[i] * w3[i]
	}
	return a0 + a1, b0 + b1, c0 + c1, d0 + d1
}

// Dot2F32 computes the dot products of x against two weight rows in one
// sweep — the 2-row tail block of MatVecF32. Each x element is loaded
// once for both rows, with four accumulator chains per row.
func Dot2F32(x, w0, w1 []float32) (r0, r1 float32) {
	n := len(x)
	w0 = w0[:n]
	w1 = w1[:n]
	var a0, a1, a2, a3 float32
	var b0, b1, b2, b3 float32
	i := 0
	for ; i+4 <= n; i += 4 {
		x0, x1, x2, x3 := x[i], x[i+1], x[i+2], x[i+3]
		a0 += x0 * w0[i]
		a1 += x1 * w0[i+1]
		a2 += x2 * w0[i+2]
		a3 += x3 * w0[i+3]
		b0 += x0 * w1[i]
		b1 += x1 * w1[i+1]
		b2 += x2 * w1[i+2]
		b3 += x3 * w1[i+3]
	}
	for ; i < n; i++ {
		a0 += x[i] * w0[i]
		b0 += x[i] * w1[i]
	}
	return (a0 + a1) + (a2 + a3), (b0 + b1) + (b2 + b3)
}

// Dot1F32 is the odd-row tail of MatVecF32, matching Dot2F32's per-row
// reduction order (4-wide).
func Dot1F32(x, w []float32) float32 {
	n := len(x)
	w = w[:n]
	var a0, a1, a2, a3 float32
	i := 0
	for ; i+4 <= n; i += 4 {
		a0 += x[i] * w[i]
		a1 += x[i+1] * w[i+1]
		a2 += x[i+2] * w[i+2]
		a3 += x[i+3] * w[i+3]
	}
	for ; i < n; i++ {
		a0 += x[i] * w[i]
	}
	return (a0 + a1) + (a2 + a3)
}

// MatVecF32 computes dst[j] = bias[j] + x·wT[j] for j in [0, out), where wT
// is a transposed (out×in, row-major) weight panel: output j's weights are
// the contiguous row wT[j*in : (j+1)*in]. The dot-product form reads each
// weight exactly once with unit stride, and outputs are produced in 4-row
// register blocks so every x load feeds four rows' accumulation chains —
// the matvec shape the decode fast path is built from.
func MatVecF32(dst, wT, bias, x []float32, in, out int) {
	dst = dst[:out]
	x = x[:in]
	j := 0
	for ; j+4 <= out; j += 4 {
		r0, r1, r2, r3 := Dot4F32(x,
			wT[j*in:(j+1)*in], wT[(j+1)*in:(j+2)*in],
			wT[(j+2)*in:(j+3)*in], wT[(j+3)*in:(j+4)*in])
		dst[j] = bias[j] + r0
		dst[j+1] = bias[j+1] + r1
		dst[j+2] = bias[j+2] + r2
		dst[j+3] = bias[j+3] + r3
	}
	if j+2 <= out {
		r0, r1 := Dot2F32(x, wT[j*in:(j+1)*in], wT[(j+1)*in:(j+2)*in])
		dst[j] = bias[j] + r0
		dst[j+1] = bias[j+1] + r1
		j += 2
	}
	if j < out {
		dst[j] = bias[j] + Dot1F32(x, wT[j*in:(j+1)*in])
	}
}

// MatVecGroupF32 runs MatVecF32 for a whole group of slot-major rows with
// the loop order inverted: weight 4-row blocks are the OUTER loop and group
// rows the inner one, so each weight block is loaded from memory once and
// stays L1-hot while every row in the group consumes it. For a group of G
// rows this divides the weight traffic per row by G — the cross-slot
// economy of scale batched decoding exists for, and the reason a decoder
// slot kept hot (continuous batching) is cheaper than one decoding alone in
// a drained batch. Per-row arithmetic and reduction order are exactly
// MatVecF32's, so results are independent of how rows are grouped — the
// determinism contract across parallel sharding.
//
// Row s reads x[s*xStride : s*xStride+in] and writes
// dst[s*dstStride : s*dstStride+out].
func MatVecGroupF32(dst []float32, dstStride int, wT, bias []float32, x []float32, xStride, in, out int, group []int) {
	j := 0
	for ; j+4 <= out; j += 4 {
		w0 := wT[j*in : (j+1)*in]
		w1 := wT[(j+1)*in : (j+2)*in]
		w2 := wT[(j+2)*in : (j+3)*in]
		w3 := wT[(j+3)*in : (j+4)*in]
		b0, b1, b2, b3 := bias[j], bias[j+1], bias[j+2], bias[j+3]
		for _, s := range group {
			xr := x[s*xStride : s*xStride+in]
			r0, r1, r2, r3 := Dot4F32(xr, w0, w1, w2, w3)
			d := dst[s*dstStride+j : s*dstStride+j+4]
			d[0] = b0 + r0
			d[1] = b1 + r1
			d[2] = b2 + r2
			d[3] = b3 + r3
		}
	}
	if j+2 <= out {
		w0 := wT[j*in : (j+1)*in]
		w1 := wT[(j+1)*in : (j+2)*in]
		for _, s := range group {
			xr := x[s*xStride : s*xStride+in]
			r0, r1 := Dot2F32(xr, w0, w1)
			d := dst[s*dstStride+j : s*dstStride+j+2]
			d[0] = bias[j] + r0
			d[1] = bias[j+1] + r1
		}
		j += 2
	}
	if j < out {
		w0 := wT[j*in : (j+1)*in]
		for _, s := range group {
			dst[s*dstStride+j] = bias[j] + Dot1F32(x[s*xStride:s*xStride+in], w0)
		}
	}
}

// AxpyF32 computes dst[i] += a*x[i] over len(x) elements.
func AxpyF32(dst []float32, a float32, x []float32) {
	dst = dst[:len(x)]
	for i, v := range x {
		dst[i] += a * v
	}
}

// F32From widens/narrows a float64 slice into dst (len(src) elements).
func F32From(dst []float32, src []float64) {
	dst = dst[:len(src)]
	for i, v := range src {
		dst[i] = float32(v)
	}
}
