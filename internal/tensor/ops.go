package tensor

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Softmax applies a numerically stable softmax over each row.
func Softmax(a *Tensor) *Tensor {
	out := child(a.Rows, a.Cols, "softmax", func(out *Tensor) {
		if !a.requiresGrad {
			return
		}
		g := a.ensureGrad()
		ParallelFor(a.Rows, 4*a.Cols, func(lo, hi int) {
			for r := lo; r < hi; r++ {
				y := out.Data[r*a.Cols : (r+1)*a.Cols]
				dy := out.Grad[r*a.Cols : (r+1)*a.Cols]
				var dot float64
				for j := range y {
					dot += y[j] * dy[j]
				}
				gr := g[r*a.Cols : (r+1)*a.Cols]
				for j := range y {
					gr[j] += y[j] * (dy[j] - dot)
				}
			}
		})
	}, a)
	// Rows are independent, so sharding preserves bit-identical output; exp
	// dominates the per-element cost, hence the inflated work estimate.
	ParallelFor(a.Rows, 8*a.Cols, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			x := a.Data[r*a.Cols : (r+1)*a.Cols]
			y := out.Data[r*a.Cols : (r+1)*a.Cols]
			softmaxRow(x, y)
		}
	})
	return out
}

func softmaxRow(x, y []float64) {
	maxv := math.Inf(-1)
	for _, v := range x {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for j, v := range x {
		e := math.Exp(v - maxv)
		y[j] = e
		sum += e
	}
	inv := 1 / sum
	for j := range y {
		y[j] *= inv
	}
}

// CausalSoftmax applies a row-wise softmax to a square score matrix with a
// causal mask: entry (i, j) participates only when j ≤ i. Masked entries of
// the output are exactly zero. This is the attention-weight op of the
// decoder-only transformer.
func CausalSoftmax(a *Tensor) *Tensor {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("tensor: CausalSoftmax requires square input, got %d×%d", a.Rows, a.Cols))
	}
	n := a.Rows
	out := child(n, n, "causal_softmax", func(out *Tensor) {
		if !a.requiresGrad {
			return
		}
		g := a.ensureGrad()
		ParallelFor(n, 2*n, func(lo, hi int) {
			for r := lo; r < hi; r++ {
				y := out.Data[r*n : r*n+r+1]
				dy := out.Grad[r*n : r*n+r+1]
				var dot float64
				for j := range y {
					dot += y[j] * dy[j]
				}
				gr := g[r*n : r*n+r+1]
				for j := range y {
					gr[j] += y[j] * (dy[j] - dot)
				}
			}
		})
	}, a)
	clear(out.Data) // the masked triangle (j > r) must read as exact zeros
	ParallelFor(n, 4*n, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			x := a.Data[r*n : r*n+r+1]
			y := out.Data[r*n : r*n+r+1]
			softmaxRow(x, y)
			// entries j > r stay zero
		}
	})
	return out
}

// LayerNorm normalizes each row to zero mean and unit variance, then applies
// the learned per-column gain and bias (both 1×cols tensors).
func LayerNorm(a, gain, bias *Tensor, eps float64) *Tensor {
	if gain.Rows != 1 || gain.Cols != a.Cols || bias.Rows != 1 || bias.Cols != a.Cols {
		panic("tensor: LayerNorm gain/bias must be 1×cols")
	}
	n := float64(a.Cols)
	// Cache per-row inverse std and normalized values for the backward pass
	// (the mean itself is not needed again). This scratch lives as long as
	// the tape, so it draws from the arena — raw, since the forward pass
	// fully overwrites both views — instead of being re-made every forward.
	scratch, _ := allocFloatsRaw(a.Rows + len(a.Data))
	istd := scratch[:a.Rows]
	xhat := scratch[a.Rows:]

	out := child(a.Rows, a.Cols, "layernorm", func(out *Tensor) {
		// Gain/bias gradients accumulate across rows, so they stay serial
		// (in row order, keeping the float result identical); the input
		// gradient is row-independent and shards across the pool.
		if gain.requiresGrad || bias.requiresGrad {
			gg := gain.ensureGrad()
			gb := bias.ensureGrad()
			for r := 0; r < a.Rows; r++ {
				dy := out.Grad[r*a.Cols : (r+1)*a.Cols]
				xh := xhat[r*a.Cols : (r+1)*a.Cols]
				if gain.requiresGrad {
					for j := range dy {
						gg[j] += dy[j] * xh[j]
					}
				}
				if bias.requiresGrad {
					for j := range dy {
						gb[j] += dy[j]
					}
				}
			}
		}
		if a.requiresGrad {
			ga := a.ensureGrad()
			ParallelFor(a.Rows, 6*a.Cols, func(lo, hi int) {
				for r := lo; r < hi; r++ {
					dy := out.Grad[r*a.Cols : (r+1)*a.Cols]
					xh := xhat[r*a.Cols : (r+1)*a.Cols]
					// dxhat = dy * gain
					var sumDx, sumDxXh float64
					for j := range dy {
						dx := dy[j] * gain.Data[j]
						sumDx += dx
						sumDxXh += dx * xh[j]
					}
					gr := ga[r*a.Cols : (r+1)*a.Cols]
					for j := range dy {
						dx := dy[j] * gain.Data[j]
						gr[j] += istd[r] * (dx - sumDx/n - xh[j]*sumDxXh/n)
					}
				}
			})
		}
	}, a, gain, bias)

	ParallelFor(a.Rows, 5*a.Cols, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			x := a.Data[r*a.Cols : (r+1)*a.Cols]
			var m float64
			for _, v := range x {
				m += v
			}
			m /= n
			var v float64
			for _, xv := range x {
				d := xv - m
				v += d * d
			}
			v /= n
			is := 1 / math.Sqrt(v+eps)
			istd[r] = is
			y := out.Data[r*a.Cols : (r+1)*a.Cols]
			xh := xhat[r*a.Cols : (r+1)*a.Cols]
			for j, xv := range x {
				h := (xv - m) * is
				xh[j] = h
				y[j] = h*gain.Data[j] + bias.Data[j]
			}
		}
	})
	return out
}

// Dropout zeroes each element with probability p during training, scaling
// survivors by 1/(1-p). With p ≤ 0 or a nil rng it is the identity.
func Dropout(a *Tensor, p float64, rng *rand.Rand) *Tensor {
	if p <= 0 || rng == nil {
		return a
	}
	if p >= 1 {
		panic("tensor: Dropout p must be < 1")
	}
	// The mask is consulted by the backward closure, so it is tape-lived
	// scratch: arena-allocated when a trainer has one installed.
	mask, _ := allocFloats(len(a.Data))
	scale := 1 / (1 - p)
	for i := range mask {
		if rng.Float64() >= p {
			mask[i] = scale
		}
	}
	out := child(a.Rows, a.Cols, "dropout", func(out *Tensor) {
		if a.requiresGrad {
			g := a.ensureGrad()
			for i, v := range out.Grad {
				g[i] += v * mask[i]
			}
		}
	}, a)
	for i, v := range a.Data {
		out.Data[i] = v * mask[i]
	}
	return out
}

// MeanRows returns the column means of a as a 1×m row vector. The 1/n
// reciprocal is hoisted out of the element loops (one division instead of
// one per element, forward and backward).
func MeanRows(a *Tensor) *Tensor {
	inv := 1 / float64(a.Rows)
	out := child(1, a.Cols, "mean_rows", func(out *Tensor) {
		if a.requiresGrad {
			g := a.ensureGrad()
			for r := 0; r < a.Rows; r++ {
				gr := g[r*a.Cols : (r+1)*a.Cols]
				for j, v := range out.Grad {
					gr[j] += v * inv
				}
			}
		}
	}, a)
	clear(out.Data) // accumulated below, so it must start at zero
	for r := 0; r < a.Rows; r++ {
		row := a.Data[r*a.Cols : (r+1)*a.Cols]
		for j, v := range row {
			out.Data[j] += v * inv
		}
	}
	return out
}

// BroadcastScalar replicates a 1×1 scalar into an n×1 column; gradients sum
// back into the scalar. Combined with MeanRows/Mean it builds minibatch
// statistics (e.g. the minibatch-variance anti-mode-collapse feature of the
// GAN baseline's discriminator).
func BroadcastScalar(s *Tensor, rows int) *Tensor {
	if s.Rows != 1 || s.Cols != 1 {
		panic(fmt.Sprintf("tensor: BroadcastScalar needs 1×1 input, got %d×%d", s.Rows, s.Cols))
	}
	out := child(rows, 1, "bcast_scalar", func(out *Tensor) {
		if s.requiresGrad {
			g := s.ensureGrad()
			for _, v := range out.Grad {
				g[0] += v
			}
		}
	}, s)
	for i := range out.Data {
		out.Data[i] = s.Data[0]
	}
	return out
}

// ScaleRows multiplies every row r of a (n×m) by col[r] (col is n×1) — the
// per-row gating primitive behind DoppelGANger-style generation-flag
// masking in the GAN baseline.
func ScaleRows(a, col *Tensor) *Tensor {
	if col.Cols != 1 || col.Rows != a.Rows {
		panic(fmt.Sprintf("tensor: ScaleRows col must be %d×1, got %d×%d", a.Rows, col.Rows, col.Cols))
	}
	out := child(a.Rows, a.Cols, "scale_rows", func(out *Tensor) {
		if a.requiresGrad {
			g := a.ensureGrad()
			for r := 0; r < a.Rows; r++ {
				cv := col.Data[r]
				row := out.Grad[r*a.Cols : (r+1)*a.Cols]
				gr := g[r*a.Cols : (r+1)*a.Cols]
				for j, v := range row {
					gr[j] += v * cv
				}
			}
		}
		if col.requiresGrad {
			g := col.ensureGrad()
			for r := 0; r < a.Rows; r++ {
				row := out.Grad[r*a.Cols : (r+1)*a.Cols]
				ar := a.Data[r*a.Cols : (r+1)*a.Cols]
				var s float64
				for j, v := range row {
					s += v * ar[j]
				}
				g[r] += s
			}
		}
	}, a, col)
	for r := 0; r < a.Rows; r++ {
		cv := col.Data[r]
		ar := a.Data[r*a.Cols : (r+1)*a.Cols]
		or := out.Data[r*a.Cols : (r+1)*a.Cols]
		for j, v := range ar {
			or[j] = v * cv
		}
	}
	return out
}

// CrossEntropy computes the mean negative log-likelihood of integer targets
// under row-wise softmax of the logits. Rows with target < 0 are ignored
// (masked), mirroring padding tokens. Returns a scalar.
func CrossEntropy(logits *Tensor, targets []int) *Tensor {
	if len(targets) != logits.Rows {
		panic(fmt.Sprintf("tensor: CrossEntropy got %d targets for %d rows", len(targets), logits.Rows))
	}
	c := logits.Cols
	// probs backs both the forward loss and the backward gradient, so it is
	// tape-lived scratch (arena-allocated under a trainer).
	probs, _ := allocFloats(len(logits.Data))
	active := 0
	for _, t := range targets {
		if t >= 0 {
			active++
		}
	}
	if active == 0 {
		active = 1
	}
	for _, t := range targets {
		if t >= c {
			panic(fmt.Sprintf("tensor: CrossEntropy target %d out of range %d", t, c))
		}
	}
	out := child(1, 1, "cross_entropy", func(out *Tensor) {
		if !logits.requiresGrad {
			return
		}
		g := logits.ensureGrad()
		scale := out.Grad[0] / float64(active)
		ParallelFor(logits.Rows, 2*c, func(lo, hi int) {
			for r := lo; r < hi; r++ {
				t := targets[r]
				if t < 0 {
					continue
				}
				p := probs[r*c : (r+1)*c]
				gr := g[r*c : (r+1)*c]
				for j := range p {
					gr[j] += scale * p[j]
				}
				gr[t] -= scale
			}
		})
	}, logits)
	// Per-row softmax and loss terms shard across the pool; the reduction
	// over rows stays a serial in-order sum so the result is bit-identical
	// to the fully serial path at any parallelism degree.
	rowLoss, handle := getBuf(logits.Rows)
	ParallelFor(logits.Rows, 8*c, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			x := logits.Data[r*c : (r+1)*c]
			p := probs[r*c : (r+1)*c]
			softmaxRow(x, p)
			if t := targets[r]; t >= 0 {
				rowLoss[r] = -math.Log(math.Max(p[t], 1e-300))
			}
		}
	})
	var loss float64
	for r, t := range targets {
		if t >= 0 {
			loss += rowLoss[r]
		}
	}
	putBuf(handle)
	out.Data[0] = loss / float64(active)
	return out
}

// GaussianNLL computes the mean Gaussian negative log-likelihood of targets
// under per-row (mean, logStd) predictions — the loss of CPT-GPT's numeric
// interarrival head (Design 2). mean and logStd must both be n×1; rows with
// mask[r] == false are ignored. Returns a scalar.
func GaussianNLL(mean, logStd *Tensor, targets []float64, mask []bool) *Tensor {
	n := mean.Rows
	if mean.Cols != 1 || logStd.Cols != 1 || logStd.Rows != n || len(targets) != n || len(mask) != n {
		panic("tensor: GaussianNLL shape mismatch")
	}
	active := 0
	for _, m := range mask {
		if m {
			active++
		}
	}
	if active == 0 {
		active = 1
	}
	const halfLog2Pi = 0.9189385332046727
	out := child(1, 1, "gaussian_nll", func(out *Tensor) {
		scale := out.Grad[0] / float64(active)
		for r := 0; r < n; r++ {
			if !mask[r] {
				continue
			}
			ls := logStd.Data[r]
			sigma2 := math.Exp(2 * ls)
			diff := mean.Data[r] - targets[r]
			if mean.requiresGrad {
				mean.ensureGrad()[r] += scale * diff / sigma2
			}
			if logStd.requiresGrad {
				logStd.ensureGrad()[r] += scale * (1 - diff*diff/sigma2)
			}
		}
	}, mean, logStd)
	var loss float64
	for r := 0; r < n; r++ {
		if !mask[r] {
			continue
		}
		ls := logStd.Data[r]
		sigma2 := math.Exp(2 * ls)
		diff := mean.Data[r] - targets[r]
		loss += halfLog2Pi + ls + diff*diff/(2*sigma2)
	}
	out.Data[0] = loss / float64(active)
	return out
}

// MSE computes the mean squared error between per-row scalar predictions
// (n×1) and targets, honoring the mask. Used by the no-distribution-head
// ablation (Table 8) and by regression baselines.
func MSE(pred *Tensor, targets []float64, mask []bool) *Tensor {
	n := pred.Rows
	if pred.Cols != 1 || len(targets) != n || len(mask) != n {
		panic("tensor: MSE shape mismatch")
	}
	active := 0
	for _, m := range mask {
		if m {
			active++
		}
	}
	if active == 0 {
		active = 1
	}
	out := child(1, 1, "mse", func(out *Tensor) {
		if !pred.requiresGrad {
			return
		}
		g := pred.ensureGrad()
		scale := out.Grad[0] * 2 / float64(active)
		for r := 0; r < n; r++ {
			if mask[r] {
				g[r] += scale * (pred.Data[r] - targets[r])
			}
		}
	}, pred)
	var loss float64
	for r := 0; r < n; r++ {
		if mask[r] {
			d := pred.Data[r] - targets[r]
			loss += d * d
		}
	}
	out.Data[0] = loss / float64(active)
	return out
}

// BCEWithLogits computes the mean binary cross-entropy of logits against
// targets in {0,1} — the discriminator/generator loss of the GAN baseline.
// logits must be n×1.
func BCEWithLogits(logits *Tensor, targets []float64) *Tensor {
	n := logits.Rows
	if logits.Cols != 1 || len(targets) != n {
		panic("tensor: BCEWithLogits shape mismatch")
	}
	out := child(1, 1, "bce_logits", func(out *Tensor) {
		if !logits.requiresGrad {
			return
		}
		g := logits.ensureGrad()
		scale := out.Grad[0] / float64(n)
		for r := 0; r < n; r++ {
			s := 1 / (1 + math.Exp(-logits.Data[r]))
			g[r] += scale * (s - targets[r])
		}
	}, logits)
	var loss float64
	for r := 0; r < n; r++ {
		x := logits.Data[r]
		// Numerically stable: max(x,0) − x·t + log(1+e^{−|x|})
		loss += math.Max(x, 0) - x*targets[r] + math.Log1p(math.Exp(-math.Abs(x)))
	}
	out.Data[0] = loss / float64(n)
	return out
}

// AddScalars sums 1×1 tensors with the given weights into one scalar — the
// weighted multi-field loss combiner of CPT-GPT (§5.3 loss-weight study).
func AddScalars(weights []float64, losses ...*Tensor) *Tensor {
	if len(weights) != len(losses) || len(losses) == 0 {
		panic("tensor: AddScalars needs matching non-empty weights and losses")
	}
	for _, l := range losses {
		if l.Rows != 1 || l.Cols != 1 {
			panic("tensor: AddScalars operand is not scalar")
		}
	}
	parents := append([]*Tensor(nil), losses...)
	ws := append([]float64(nil), weights...)
	out := child(1, 1, "add_scalars", func(out *Tensor) {
		for i, p := range parents {
			if p.requiresGrad {
				p.ensureGrad()[0] += out.Grad[0] * ws[i]
			}
		}
	}, parents...)
	var s float64
	for i, l := range losses {
		s += ws[i] * l.Data[0]
	}
	out.Data[0] = s
	return out
}
