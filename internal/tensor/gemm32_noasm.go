//go:build !amd64

package tensor

// hasGemmAsm: no assembly kernel on this architecture; GemmF32 always runs
// the portable scalar fallback (bit-identical to MatVecF32 per row).
func hasGemmAsm() bool { return false }

// gemmF32Asm is never called when hasGemmAsm reports false; the stub keeps
// the dispatch site portable.
func gemmF32Asm(dst, wT, bias, x *float32, rows, in, out int) {
	panic("tensor: gemmF32Asm called without assembly support")
}
