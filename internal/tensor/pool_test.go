package tensor

import (
	"sync/atomic"
	"testing"
)

// TestPoolLoadCounters pins the worker-pool load accounting: after a
// sharded ParallelFor, the aggregate counters must show the executed
// shards, every index must be covered, and the empty/valid poll split must
// stay consistent (a worker that ran a shard polled validly at least once).
func TestPoolLoadCounters(t *testing.T) {
	prev := SetParallelism(4)
	defer SetParallelism(prev)

	before := PoolLoad()
	const n = 1 << 12
	var covered atomic.Int64
	// workPerItem large enough to force sharding.
	ParallelFor(n, parallelThreshold, func(lo, hi int) {
		covered.Add(int64(hi - lo))
	})
	after := PoolLoad()

	if covered.Load() != n {
		t.Fatalf("covered %d indices, want %d", covered.Load(), n)
	}
	if after.Workers < 1 {
		t.Fatalf("no pool workers spawned")
	}
	dValid := after.ValidPolls - before.ValidPolls
	dItems := after.Items - before.Items
	if dValid < 1 {
		t.Fatalf("pool executed %d shards, want ≥ 1", dValid)
	}
	// The submitting goroutine runs shard 0 inline, so the pool sees at
	// most n - chunk items and at least one shard's worth.
	if dItems <= 0 || dItems >= n {
		t.Fatalf("pool items delta %d outside (0, %d)", dItems, n)
	}
	if after.EmptyPolls < before.EmptyPolls || after.ValidPolls < before.ValidPolls {
		t.Fatal("pool counters went backwards")
	}
}
