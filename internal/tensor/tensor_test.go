package tensor

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func newRNG() *rand.Rand { return rand.New(rand.NewPCG(42, 43)) }

// numericalGrad estimates ∂loss/∂p.Data[i] by central differences, where
// loss is recomputed from scratch by f.
func numericalGrad(t *testing.T, p *Tensor, f func() float64) []float64 {
	t.Helper()
	const h = 1e-6
	grads := make([]float64, len(p.Data))
	for i := range p.Data {
		orig := p.Data[i]
		p.Data[i] = orig + h
		up := f()
		p.Data[i] = orig - h
		down := f()
		p.Data[i] = orig
		grads[i] = (up - down) / (2 * h)
	}
	return grads
}

// checkGrads compares analytic gradients against numerical ones.
func checkGrads(t *testing.T, name string, params []*Tensor, loss func() *Tensor) {
	t.Helper()
	l := loss()
	l.Backward()
	for pi, p := range params {
		analytic := make([]float64, len(p.Data))
		copy(analytic, p.Grad)
		numeric := numericalGrad(t, p, func() float64 { return loss().Data[0] })
		for i := range analytic {
			diff := math.Abs(analytic[i] - numeric[i])
			scale := math.Max(1, math.Max(math.Abs(analytic[i]), math.Abs(numeric[i])))
			if diff/scale > 1e-4 {
				t.Fatalf("%s: param %d elem %d: analytic %g vs numeric %g", name, pi, i, analytic[i], numeric[i])
			}
		}
	}
}

func TestMatMulForward(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulGrad(t *testing.T) {
	rng := newRNG()
	a := Randn(3, 4, 1, rng).Param()
	b := Randn(4, 2, 1, rng).Param()
	checkGrads(t, "matmul", []*Tensor{a, b}, func() *Tensor {
		return Mean(MatMul(a, b))
	})
}

func TestAddBroadcastGrad(t *testing.T) {
	rng := newRNG()
	a := Randn(3, 4, 1, rng).Param()
	b := Randn(1, 4, 1, rng).Param()
	checkGrads(t, "add_bcast", []*Tensor{a, b}, func() *Tensor {
		return Mean(Add(a, b))
	})
}

func TestMulScaleGrad(t *testing.T) {
	rng := newRNG()
	a := Randn(2, 3, 1, rng).Param()
	b := Randn(2, 3, 1, rng).Param()
	checkGrads(t, "mul+scale", []*Tensor{a, b}, func() *Tensor {
		return Mean(Scale(Mul(a, b), 2.5))
	})
}

func TestTransposeGrad(t *testing.T) {
	rng := newRNG()
	a := Randn(2, 5, 1, rng).Param()
	w := Randn(2, 3, 1, rng)
	checkGrads(t, "transpose", []*Tensor{a}, func() *Tensor {
		return Mean(MatMul(Transpose(a), w))
	})
}

func TestSliceConcatGrad(t *testing.T) {
	rng := newRNG()
	a := Randn(3, 6, 1, rng).Param()
	checkGrads(t, "slice+concat", []*Tensor{a}, func() *Tensor {
		left := SliceCols(a, 0, 3)
		right := SliceCols(a, 3, 6)
		return Mean(Mul(ConcatCols(right, left), ConcatCols(left, right)))
	})
}

func TestSliceRowsGrad(t *testing.T) {
	rng := newRNG()
	a := Randn(5, 3, 1, rng).Param()
	checkGrads(t, "slice_rows", []*Tensor{a}, func() *Tensor {
		return Mean(SliceRows(a, 1, 4))
	})
}

func TestUnaryOpsGrad(t *testing.T) {
	rng := newRNG()
	for _, tc := range []struct {
		name string
		fn   func(*Tensor) *Tensor
	}{
		{"relu", ReLU},
		{"gelu", GELU},
		{"tanh", Tanh},
		{"sigmoid", Sigmoid},
		{"exp", Exp},
	} {
		a := Randn(3, 4, 0.8, rng).Param()
		checkGrads(t, tc.name, []*Tensor{a}, func() *Tensor {
			return Mean(tc.fn(a))
		})
	}
}

func TestSoftmaxGrad(t *testing.T) {
	rng := newRNG()
	a := Randn(3, 5, 1, rng).Param()
	w := Randn(3, 5, 1, rng)
	checkGrads(t, "softmax", []*Tensor{a}, func() *Tensor {
		return Mean(Mul(Softmax(a), w))
	})
}

func TestCausalSoftmaxGrad(t *testing.T) {
	rng := newRNG()
	a := Randn(4, 4, 1, rng).Param()
	w := Randn(4, 4, 1, rng)
	checkGrads(t, "causal_softmax", []*Tensor{a}, func() *Tensor {
		return Mean(Mul(CausalSoftmax(a), w))
	})
}

func TestCausalSoftmaxMasking(t *testing.T) {
	rng := newRNG()
	a := Randn(4, 4, 1, rng)
	y := CausalSoftmax(a)
	for i := 0; i < 4; i++ {
		var sum float64
		for j := 0; j < 4; j++ {
			v := y.At(i, j)
			if j > i && v != 0 {
				t.Fatalf("masked entry (%d,%d) = %v, want 0", i, j, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v, want 1", i, sum)
		}
	}
}

func TestLayerNormGrad(t *testing.T) {
	rng := newRNG()
	a := Randn(3, 4, 1, rng).Param()
	gain := Randn(1, 4, 0.5, rng).Param()
	bias := Randn(1, 4, 0.5, rng).Param()
	w := Randn(3, 4, 1, rng)
	checkGrads(t, "layernorm", []*Tensor{a, gain, bias}, func() *Tensor {
		return Mean(Mul(LayerNorm(a, gain, bias, 1e-5), w))
	})
}

func TestCrossEntropyGrad(t *testing.T) {
	rng := newRNG()
	logits := Randn(4, 3, 1, rng).Param()
	targets := []int{0, 2, -1, 1} // one masked row
	checkGrads(t, "cross_entropy", []*Tensor{logits}, func() *Tensor {
		return CrossEntropy(logits, targets)
	})
}

func TestGaussianNLLGrad(t *testing.T) {
	rng := newRNG()
	mean := Randn(4, 1, 1, rng).Param()
	logStd := Randn(4, 1, 0.3, rng).Param()
	targets := []float64{0.5, -0.2, 0.8, 0.1}
	mask := []bool{true, true, false, true}
	checkGrads(t, "gaussian_nll", []*Tensor{mean, logStd}, func() *Tensor {
		return GaussianNLL(mean, logStd, targets, mask)
	})
}

func TestMSEGrad(t *testing.T) {
	rng := newRNG()
	pred := Randn(4, 1, 1, rng).Param()
	targets := []float64{0.5, -0.2, 0.8, 0.1}
	mask := []bool{true, false, true, true}
	checkGrads(t, "mse", []*Tensor{pred}, func() *Tensor {
		return MSE(pred, targets, mask)
	})
}

func TestBCEWithLogitsGrad(t *testing.T) {
	rng := newRNG()
	logits := Randn(4, 1, 1.5, rng).Param()
	targets := []float64{1, 0, 1, 0}
	checkGrads(t, "bce", []*Tensor{logits}, func() *Tensor {
		return BCEWithLogits(logits, targets)
	})
}

func TestAddScalarsGrad(t *testing.T) {
	rng := newRNG()
	a := Randn(2, 2, 1, rng).Param()
	b := Randn(2, 2, 1, rng).Param()
	checkGrads(t, "add_scalars", []*Tensor{a, b}, func() *Tensor {
		return AddScalars([]float64{2, 0.5}, Mean(a), Sum(b))
	})
}

func TestClampGrad(t *testing.T) {
	a := FromSlice(1, 4, []float64{-2, -0.5, 0.5, 2}).Param()
	checkGrads(t, "clamp", []*Tensor{a}, func() *Tensor {
		return Mean(Clamp(a, -1, 1))
	})
}

func TestBackwardRequiresScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Backward on non-scalar should panic")
		}
	}()
	New(2, 2).Backward()
}

func TestNoGradSkipsTape(t *testing.T) {
	a := New(2, 2)
	b := New(2, 2)
	c := MatMul(a, b)
	if c.RequiresGrad() {
		t.Fatal("result of grad-free inputs should not require grad")
	}
	if c.backFn != nil {
		t.Fatal("grad-free op should not retain a backward closure")
	}
}

func TestGradAccumulation(t *testing.T) {
	a := FromSlice(1, 1, []float64{2}).Param()
	l1 := Mean(Mul(a, a)) // d/da = 2a = 4
	l1.Backward()
	l2 := Mean(Scale(a, 3)) // d/da = 3
	l2.Backward()
	if got := a.Grad[0]; math.Abs(got-7) > 1e-12 {
		t.Fatalf("accumulated grad = %v, want 7", got)
	}
	a.ZeroGrad()
	if a.Grad[0] != 0 {
		t.Fatal("ZeroGrad did not clear")
	}
}

// Property: softmax rows are a probability simplex for arbitrary inputs.
func TestSoftmaxSimplexProperty(t *testing.T) {
	f := func(vals [6]float64) bool {
		data := make([]float64, 6)
		for i, v := range vals {
			// bound magnitudes to avoid inf inputs from quick
			data[i] = math.Mod(v, 50)
			if math.IsNaN(data[i]) {
				data[i] = 0
			}
		}
		y := Softmax(FromSlice(2, 3, data))
		for r := 0; r < 2; r++ {
			var sum float64
			for c := 0; c < 3; c++ {
				v := y.At(r, c)
				if v < 0 || v > 1 || math.IsNaN(v) {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: MatMul distributes over addition: (A+B)·C == A·C + B·C.
func TestMatMulDistributiveProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed+1))
		a := Randn(3, 4, 1, rng)
		b := Randn(3, 4, 1, rng)
		c := Randn(4, 2, 1, rng)
		lhs := MatMul(Add(a, b), c)
		r1 := MatMul(a, c)
		r2 := MatMul(b, c)
		for i := range lhs.Data {
			if math.Abs(lhs.Data[i]-(r1.Data[i]+r2.Data[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelMatMulMatchesSerial(t *testing.T) {
	rng := newRNG()
	// Large enough to trigger the parallel path.
	a := Randn(256, 64, 1, rng)
	b := Randn(64, 128, 1, rng)
	c := MatMul(a, b)
	// Serial reference for a few sampled entries.
	for _, rc := range [][2]int{{0, 0}, {17, 33}, {255, 127}, {128, 64}} {
		r, cc := rc[0], rc[1]
		var want float64
		for k := 0; k < 64; k++ {
			want += a.At(r, k) * b.At(k, cc)
		}
		if math.Abs(c.At(r, cc)-want) > 1e-9 {
			t.Fatalf("parallel matmul (%d,%d) = %v, want %v", r, cc, c.At(r, cc), want)
		}
	}
}
