// AVX2+FMA kernel for the multi-row float32 GEMM of the speculative-decode
// verify pass (see gemm32.go for the dispatch contract). The reduction runs
// 8 lanes wide with four independent accumulator registers — fixed order,
// so results are deterministic — and each transposed weight row is loaded
// once per input-row group iteration, staying L1-hot across the k rows.

#include "textflag.h"

// func cpuHasAVX2FMA() bool
//
// One-shot feature probe: FMA + AVX + OSXSAVE (CPUID leaf 1), OS-enabled
// XMM/YMM state (XCR0 via XGETBV), and AVX2 (leaf 7). Matches the probe
// order of golang.org/x/sys/cpu without importing it.
TEXT ·cpuHasAVX2FMA(SB), NOSPLIT, $0-1
	// Leaf 0: the CPU must implement leaf 7 at all.
	XORL AX, AX
	XORL CX, CX
	CPUID
	CMPL AX, $7
	JLT  no

	// Leaf 1 ECX: FMA (bit 12), OSXSAVE (bit 27), AVX (bit 28).
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, R8
	ANDL $0x18001000, R8
	CMPL R8, $0x18001000
	JNE  no

	// XCR0: the OS must context-switch XMM (bit 1) and YMM (bit 2) state.
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no

	// Leaf 7 subleaf 0 EBX: AVX2 (bit 5).
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $0x20, BX
	JEQ  no

	MOVB $1, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET

// func gemmF32Asm(dst, wT, bias, x *float32, rows, in, out int)
//
// dst[r*out+j] = bias[j] + sum_i x[r*in+i] * wT[j*in+i]
//
// Loop nest: weight rows (j) outer, input rows (r) inner — a weight row is
// fetched once from cache/memory and reused for every input row of the
// group, which is the cross-token amortization the verify pass exists for.
// The reduction per (r, j) uses four 8-lane FMA accumulators over 32-element
// chunks, an 8-element cleanup loop, a pairwise + horizontal tree combine,
// then a scalar tail — all in a fixed order.
TEXT ·gemmF32Asm(SB), NOSPLIT, $0-56
	MOVQ dst+0(FP), DI
	MOVQ wT+8(FP), SI
	MOVQ bias+16(FP), R8
	MOVQ x+24(FP), R9
	MOVQ rows+32(FP), R10
	MOVQ in+40(FP), R11
	MOVQ out+48(FP), R12

	MOVQ R11, R13
	SHLQ $2, R13            // R13 = in*4, the byte stride of wT and x rows

	XORQ R14, R14           // j = 0
jloop:
	CMPQ R14, R12
	JGE  done
	VMOVSS (R8)(R14*4), X8  // bias[j]
	MOVQ R9, DX             // x row cursor = &x[0]
	XORQ R15, R15           // r = 0
rloop:
	CMPQ R15, R10
	JGE  rdone

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	MOVQ DX, AX             // x cursor
	MOVQ SI, BX             // wT row cursor
	MOVQ R11, CX            // remaining reduction length
i32:
	CMPQ CX, $32
	JLT  i8
	VMOVUPS (AX), Y4
	VMOVUPS 32(AX), Y5
	VMOVUPS 64(AX), Y6
	VMOVUPS 96(AX), Y7
	VFMADD231PS (BX), Y4, Y0
	VFMADD231PS 32(BX), Y5, Y1
	VFMADD231PS 64(BX), Y6, Y2
	VFMADD231PS 96(BX), Y7, Y3
	ADDQ $128, AX
	ADDQ $128, BX
	SUBQ $32, CX
	JMP  i32
i8:
	CMPQ CX, $8
	JLT  reduce
	VMOVUPS (AX), Y4
	VFMADD231PS (BX), Y4, Y0
	ADDQ $32, AX
	ADDQ $32, BX
	SUBQ $8, CX
	JMP  i8
reduce:
	// Pairwise accumulator combine, then an 8-lane horizontal tree sum.
	VADDPS Y1, Y0, Y0
	VADDPS Y3, Y2, Y2
	VADDPS Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
tail:
	CMPQ CX, $0
	JEQ  store
	VMOVSS (AX), X4
	VFMADD231SS (BX), X4, X0
	ADDQ $4, AX
	ADDQ $4, BX
	DECQ CX
	JMP  tail
store:
	VADDSS X8, X0, X0
	MOVQ R15, AX            // dst index r*out + j
	IMULQ R12, AX
	ADDQ R14, AX
	VMOVSS X0, (DI)(AX*4)
	ADDQ R13, DX            // next x row
	INCQ R15
	JMP  rloop
rdone:
	ADDQ R13, SI            // next wT row
	INCQ R14
	JMP  jloop
done:
	VZEROUPPER
	RET
