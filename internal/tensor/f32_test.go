package tensor

import (
	"math"
	"testing"

	"cptgpt/internal/stats"
)

func TestDotF32MatchesFloat64(t *testing.T) {
	rng := stats.NewRand(11)
	for _, n := range []int{0, 1, 3, 4, 7, 8, 33, 129} {
		a := make([]float32, n)
		b := make([]float32, n)
		var want float64
		for i := range a {
			a[i] = float32(rng.NormFloat64())
			b[i] = float32(rng.NormFloat64())
			want += float64(a[i]) * float64(b[i])
		}
		got := float64(DotF32(a, b))
		tol := 1e-4 * (1 + math.Abs(want))
		if math.Abs(got-want) > tol {
			t.Fatalf("n=%d: DotF32 = %v, float64 reference = %v (tol %v)", n, got, want, tol)
		}
	}
}

func TestDotF32Deterministic(t *testing.T) {
	rng := stats.NewRand(3)
	a := make([]float32, 101)
	b := make([]float32, 101)
	for i := range a {
		a[i] = float32(rng.NormFloat64())
		b[i] = float32(rng.NormFloat64())
	}
	first := DotF32(a, b)
	for i := 0; i < 10; i++ {
		if got := DotF32(a, b); got != first {
			t.Fatalf("DotF32 not deterministic: %v != %v", got, first)
		}
	}
}

func TestMatVecF32(t *testing.T) {
	rng := stats.NewRand(7)
	const in, out = 13, 9
	wT := make([]float32, in*out)
	bias := make([]float32, out)
	x := make([]float32, in)
	for i := range wT {
		wT[i] = float32(rng.NormFloat64())
	}
	for i := range bias {
		bias[i] = float32(rng.NormFloat64())
	}
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	dst := make([]float32, out)
	MatVecF32(dst, wT, bias, x, in, out)
	for j := 0; j < out; j++ {
		want := float64(bias[j])
		for k := 0; k < in; k++ {
			want += float64(x[k]) * float64(wT[j*in+k])
		}
		if math.Abs(float64(dst[j])-want) > 1e-4*(1+math.Abs(want)) {
			t.Fatalf("output %d: got %v, want ≈ %v", j, dst[j], want)
		}
	}
}

func TestAxpyAndF32From(t *testing.T) {
	dst := []float32{1, 2, 3}
	AxpyF32(dst, 2, []float32{10, 20, 30})
	for i, want := range []float32{21, 42, 63} {
		if dst[i] != want {
			t.Fatalf("AxpyF32[%d] = %v, want %v", i, dst[i], want)
		}
	}
	out := make([]float32, 3)
	F32From(out, []float64{0.5, -1, 2.25})
	for i, want := range []float32{0.5, -1, 2.25} {
		if out[i] != want {
			t.Fatalf("F32From[%d] = %v, want %v", i, out[i], want)
		}
	}
}
