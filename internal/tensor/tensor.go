// Package tensor implements a compact reverse-mode automatic
// differentiation engine over dense row-major float64 matrices. It is the
// substitute for the paper's PyTorch substrate (see DESIGN.md §2): the
// transformer, the GAN/LSTM baseline and every training loop in this
// repository are built on the primitives here.
//
// The engine follows the familiar tape design: each operation returns a new
// Tensor holding its value, links to its parents, and a closure that folds
// the output gradient back into the parents' gradients. Calling Backward on
// a scalar loss topologically sorts the tape and runs the closures in
// reverse. Operations on tensors that do not require gradients skip tape
// construction entirely, which makes inference allocation-light.
package tensor

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync/atomic"
)

// Tensor is a dense row-major matrix (rank ≤ 2; vectors are 1×n or n×1
// matrices, scalars are 1×1) participating in automatic differentiation.
type Tensor struct {
	// Data holds the values in row-major order, len = Rows*Cols.
	Data []float64
	// Grad accumulates ∂loss/∂Data; nil until first needed.
	Grad []float64
	// Rows and Cols give the matrix shape.
	Rows, Cols int

	requiresGrad bool
	ephemeral    bool // Data came from the ambient arena (see arena.go)
	parents      []*Tensor
	backFn       func(out *Tensor)
	visit        uint64 // topoSort generation mark (see Backward)
	op           string
}

// New returns a zero-valued rows×cols tensor that does not require grad.
// Its buffer always comes from the heap, so it may outlive any arena Reset —
// use New for parameters and other persistent tensors.
func New(rows, cols int) *Tensor {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("tensor: invalid shape %d×%d", rows, cols))
	}
	return &Tensor{Data: make([]float64, rows*cols), Rows: rows, Cols: cols}
}

// NewEphemeral returns a zero-valued rows×cols tensor whose buffer comes
// from the ambient arena when one is installed (falling back to the heap).
// It must not be used after the arena's next Reset; trainers use it for
// per-step inputs like packed minibatch token matrices.
func NewEphemeral(rows, cols int) *Tensor {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("tensor: invalid shape %d×%d", rows, cols))
	}
	data, eph := allocFloats(rows * cols)
	return &Tensor{Data: data, Rows: rows, Cols: cols, ephemeral: eph}
}

// FromSlice wraps data (not copied) as a rows×cols tensor.
func FromSlice(rows, cols int, data []float64) *Tensor {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice got %d values for %d×%d", len(data), rows, cols))
	}
	return &Tensor{Data: data, Rows: rows, Cols: cols}
}

// Scalar returns a 1×1 tensor holding v.
func Scalar(v float64) *Tensor {
	return FromSlice(1, 1, []float64{v})
}

// Randn fills a new rows×cols tensor with N(0, std²) values drawn from rng.
func Randn(rows, cols int, std float64, rng *rand.Rand) *Tensor {
	t := New(rows, cols)
	for i := range t.Data {
		t.Data[i] = std * rng.NormFloat64()
	}
	return t
}

// Param marks t as a trainable parameter (requires grad) and returns it.
func (t *Tensor) Param() *Tensor {
	t.requiresGrad = true
	return t
}

// RequiresGrad reports whether gradients flow into t.
func (t *Tensor) RequiresGrad() bool { return t.requiresGrad }

// At returns element (r, c).
func (t *Tensor) At(r, c int) float64 { return t.Data[r*t.Cols+c] }

// Set assigns element (r, c).
func (t *Tensor) Set(r, c int, v float64) { t.Data[r*t.Cols+c] = v }

// Numel returns the number of elements.
func (t *Tensor) Numel() int { return len(t.Data) }

// String renders the shape and op for debugging.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor(%d×%d, op=%s, grad=%v)", t.Rows, t.Cols, t.op, t.requiresGrad)
}

// ensureGrad allocates the gradient buffer on first use. Tape tensors whose
// values live in the arena keep their gradients there too; persistent
// tensors (parameters) always get heap gradients, which must survive until
// the optimizer consumes them.
func (t *Tensor) ensureGrad() []float64 {
	if t.Grad == nil {
		if t.ephemeral {
			t.Grad, _ = allocFloats(len(t.Data))
		} else {
			t.Grad = make([]float64, len(t.Data))
		}
	}
	return t.Grad
}

// ZeroGrad clears t's gradient buffer (keeping its allocation).
func (t *Tensor) ZeroGrad() {
	for i := range t.Grad {
		t.Grad[i] = 0
	}
}

// child constructs a result tensor wired to its parents when any of them
// requires grad; back is only retained in that case. Child values are
// tape-lived, so they draw from the ambient arena when one is installed.
func child(rows, cols int, op string, back func(out *Tensor), parents ...*Tensor) *Tensor {
	// Raw (non-zeroed) arena memory: every op overwrites its full output in
	// the forward pass, except CausalSoftmax and MeanRows, which clear it
	// explicitly.
	data, eph := allocFloatsRaw(rows * cols)
	out := &Tensor{Data: data, Rows: rows, Cols: cols, ephemeral: eph}
	out.op = op
	need := false
	for _, p := range parents {
		if p != nil && p.requiresGrad {
			need = true
			break
		}
	}
	if need {
		out.requiresGrad = true
		out.parents = parents
		// Stored as func(*Tensor) and invoked with the node itself, so no
		// extra closure is allocated per op just to capture out.
		out.backFn = back
	}
	return out
}

// Backward runs reverse-mode differentiation from t, which must be a 1×1
// scalar (a loss). Gradients accumulate into every reachable tensor with
// RequiresGrad; call ZeroGrad on parameters between steps.
func (t *Tensor) Backward() {
	if t.Rows != 1 || t.Cols != 1 {
		panic(fmt.Sprintf("tensor: Backward on non-scalar %d×%d", t.Rows, t.Cols))
	}
	order := topoSort(t)
	g := t.ensureGrad()
	g[0] = 1
	for i := len(order) - 1; i >= 0; i-- {
		if order[i].backFn != nil {
			order[i].backFn(order[i])
		}
	}
}

// visitGen issues a fresh generation per topoSort (atomically, so
// concurrent Backward calls over disjoint tapes stay as safe as they were
// with the old per-call map); a tensor is "visited" when its visit field
// equals the current generation. This replaces the per-Backward map (and
// its rehashing) with one field write per node. Backward has never
// supported running concurrently over tapes that *share* tensors (gradient
// accumulation would race), and the marks add no new constraint beyond
// that.
var visitGen atomic.Uint64

func topoSort(root *Tensor) []*Tensor {
	gen := visitGen.Add(1)
	var order []*Tensor
	// Iterative DFS to avoid deep recursion on long tapes.
	type frame struct {
		t    *Tensor
		next int
	}
	stack := []frame{{t: root}}
	root.visit = gen
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(f.t.parents) {
			p := f.t.parents[f.next]
			f.next++
			if p != nil && p.visit != gen && p.requiresGrad {
				p.visit = gen
				stack = append(stack, frame{t: p})
			}
			continue
		}
		order = append(order, f.t)
		stack = stack[:len(stack)-1]
	}
	return order
}

// parallelRows runs fn over [0, rows) sharded across the package worker
// pool when work is large enough, otherwise inline (see parallel.go).
func parallelRows(rows, workPerRow int, fn func(lo, hi int)) {
	ParallelFor(rows, workPerRow, fn)
}

// MatMul returns a·b for a (m×k) and b (k×n).
func MatMul(a, b *Tensor) *Tensor {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %d×%d · %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := child(a.Rows, b.Cols, "matmul", func(out *Tensor) {
		if a.requiresGrad {
			matmulAccBT(a.ensureGrad(), out.Grad, b.Data, out.Rows, out.Cols, b.Rows)
		}
		if b.requiresGrad {
			matmulAccT(b.ensureGrad(), a.Data, out.Grad, a.Rows, a.Cols, out.Cols)
		}
	}, a, b)
	matmulInto(out.Data, a.Data, b.Data, a.Rows, a.Cols, b.Cols)
	return out
}

// Add returns a+b elementwise; b may also be a 1×cols row vector, which is
// broadcast over a's rows (the bias-add case).
func Add(a, b *Tensor) *Tensor {
	switch {
	case a.Rows == b.Rows && a.Cols == b.Cols:
		out := child(a.Rows, a.Cols, "add", func(out *Tensor) {
			if a.requiresGrad {
				g := a.ensureGrad()
				for i, v := range out.Grad {
					g[i] += v
				}
			}
			if b.requiresGrad {
				g := b.ensureGrad()
				for i, v := range out.Grad {
					g[i] += v
				}
			}
		}, a, b)
		for i := range out.Data {
			out.Data[i] = a.Data[i] + b.Data[i]
		}
		return out
	case b.Rows == 1 && b.Cols == a.Cols:
		out := child(a.Rows, a.Cols, "add_bcast", func(out *Tensor) {
			if a.requiresGrad {
				g := a.ensureGrad()
				for i, v := range out.Grad {
					g[i] += v
				}
			}
			if b.requiresGrad {
				g := b.ensureGrad()
				for r := 0; r < out.Rows; r++ {
					row := out.Grad[r*out.Cols : (r+1)*out.Cols]
					for j, v := range row {
						g[j] += v
					}
				}
			}
		}, a, b)
		for r := 0; r < a.Rows; r++ {
			ar := a.Data[r*a.Cols : (r+1)*a.Cols]
			or := out.Data[r*a.Cols : (r+1)*a.Cols]
			for j := range or {
				or[j] = ar[j] + b.Data[j]
			}
		}
		return out
	default:
		panic(fmt.Sprintf("tensor: Add shape mismatch %d×%d + %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// Sub returns a−b elementwise (same shape only).
func Sub(a, b *Tensor) *Tensor {
	return Add(a, Scale(b, -1))
}

// Mul returns the elementwise (Hadamard) product of same-shaped tensors.
func Mul(a, b *Tensor) *Tensor {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: Mul shape mismatch %d×%d ⊙ %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := child(a.Rows, a.Cols, "mul", func(out *Tensor) {
		if a.requiresGrad {
			g := a.ensureGrad()
			for i, v := range out.Grad {
				g[i] += v * b.Data[i]
			}
		}
		if b.requiresGrad {
			g := b.ensureGrad()
			for i, v := range out.Grad {
				g[i] += v * a.Data[i]
			}
		}
	}, a, b)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// Scale returns a·s for scalar s.
func Scale(a *Tensor, s float64) *Tensor {
	out := child(a.Rows, a.Cols, "scale", func(out *Tensor) {
		if a.requiresGrad {
			g := a.ensureGrad()
			for i, v := range out.Grad {
				g[i] += v * s
			}
		}
	}, a)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * s
	}
	return out
}

// Transpose returns aᵀ.
func Transpose(a *Tensor) *Tensor {
	out := child(a.Cols, a.Rows, "transpose", func(out *Tensor) {
		if a.requiresGrad {
			g := a.ensureGrad()
			for r := 0; r < out.Rows; r++ {
				for c := 0; c < out.Cols; c++ {
					g[c*a.Cols+r] += out.Grad[r*out.Cols+c]
				}
			}
		}
	}, a)
	for r := 0; r < a.Rows; r++ {
		for c := 0; c < a.Cols; c++ {
			out.Data[c*out.Cols+r] = a.Data[r*a.Cols+c]
		}
	}
	return out
}

// SliceCols returns the column slice a[:, lo:hi] as a copy participating in
// the tape (gradients route back to the sliced columns).
func SliceCols(a *Tensor, lo, hi int) *Tensor {
	if lo < 0 || hi > a.Cols || lo >= hi {
		panic(fmt.Sprintf("tensor: SliceCols [%d:%d] of %d cols", lo, hi, a.Cols))
	}
	w := hi - lo
	out := child(a.Rows, w, "slice_cols", func(out *Tensor) {
		if a.requiresGrad {
			g := a.ensureGrad()
			for r := 0; r < out.Rows; r++ {
				src := out.Grad[r*w : (r+1)*w]
				dst := g[r*a.Cols+lo : r*a.Cols+hi]
				for i, v := range src {
					dst[i] += v
				}
			}
		}
	}, a)
	for r := 0; r < a.Rows; r++ {
		copy(out.Data[r*w:(r+1)*w], a.Data[r*a.Cols+lo:r*a.Cols+hi])
	}
	return out
}

// ConcatCols concatenates tensors with equal row counts along columns.
func ConcatCols(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: ConcatCols of nothing")
	}
	rows := ts[0].Rows
	total := 0
	for _, t := range ts {
		if t.Rows != rows {
			panic("tensor: ConcatCols row mismatch")
		}
		total += t.Cols
	}
	parents := append([]*Tensor(nil), ts...)
	out := child(rows, total, "concat_cols", func(out *Tensor) {
		off := 0
		for _, t := range parents {
			if t.requiresGrad {
				g := t.ensureGrad()
				for r := 0; r < rows; r++ {
					src := out.Grad[r*total+off : r*total+off+t.Cols]
					dst := g[r*t.Cols : (r+1)*t.Cols]
					for i, v := range src {
						dst[i] += v
					}
				}
			}
			off += t.Cols
		}
	}, parents...)
	off := 0
	for _, t := range ts {
		for r := 0; r < rows; r++ {
			copy(out.Data[r*total+off:r*total+off+t.Cols], t.Data[r*t.Cols:(r+1)*t.Cols])
		}
		off += t.Cols
	}
	return out
}

// SliceRows returns the row slice a[lo:hi, :] as a tape-participating copy.
func SliceRows(a *Tensor, lo, hi int) *Tensor {
	if lo < 0 || hi > a.Rows || lo >= hi {
		panic(fmt.Sprintf("tensor: SliceRows [%d:%d] of %d rows", lo, hi, a.Rows))
	}
	n := hi - lo
	out := child(n, a.Cols, "slice_rows", func(out *Tensor) {
		if a.requiresGrad {
			g := a.ensureGrad()
			for i, v := range out.Grad {
				g[lo*a.Cols+i] += v
			}
		}
	}, a)
	copy(out.Data, a.Data[lo*a.Cols:hi*a.Cols])
	return out
}

// GatherRows returns the row selection a[idx[0]], a[idx[1]], … as a new
// len(idx)×cols tensor; gradients scatter-add back into the selected rows.
// The scatter runs serially in ascending output-row order, so when segments
// of idx are stacked stream-by-stream (the packed-minibatch positional
// lookup) the accumulation order matches processing the streams one at a
// time — a bit-exactness requirement of the packed trainer.
func GatherRows(a *Tensor, idx []int) *Tensor {
	if len(idx) == 0 {
		panic("tensor: GatherRows of nothing")
	}
	for _, r := range idx {
		if r < 0 || r >= a.Rows {
			panic(fmt.Sprintf("tensor: GatherRows index %d out of %d rows", r, a.Rows))
		}
	}
	rows := append([]int(nil), idx...)
	c := a.Cols
	out := child(len(rows), c, "gather_rows", func(out *Tensor) {
		if a.requiresGrad {
			g := a.ensureGrad()
			for r, src := range rows {
				or := out.Grad[r*c : (r+1)*c]
				gr := g[src*c : (src+1)*c]
				for j, v := range or {
					gr[j] += v
				}
			}
		}
	}, a)
	for r, src := range rows {
		copy(out.Data[r*c:(r+1)*c], a.Data[src*c:(src+1)*c])
	}
	return out
}

// ConcatRows concatenates tensors with equal column counts along rows — the
// reassembly primitive of segment-wise packed attention.
func ConcatRows(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: ConcatRows of nothing")
	}
	cols := ts[0].Cols
	total := 0
	for _, t := range ts {
		if t.Cols != cols {
			panic("tensor: ConcatRows column mismatch")
		}
		total += t.Rows
	}
	parents := append([]*Tensor(nil), ts...)
	out := child(total, cols, "concat_rows", func(out *Tensor) {
		off := 0
		for _, t := range parents {
			n := t.Rows * cols
			if t.requiresGrad {
				g := t.ensureGrad()
				src := out.Grad[off : off+n]
				for i, v := range src {
					g[i] += v
				}
			}
			off += n
		}
	}, parents...)
	off := 0
	for _, t := range ts {
		n := copy(out.Data[off:], t.Data)
		off += n
	}
	return out
}

// Mean returns the scalar mean of all elements.
func Mean(a *Tensor) *Tensor {
	n := float64(len(a.Data))
	out := child(1, 1, "mean", func(out *Tensor) {
		if a.requiresGrad {
			g := a.ensureGrad()
			v := out.Grad[0] / n
			for i := range g {
				g[i] += v
			}
		}
	}, a)
	var s float64
	for _, v := range a.Data {
		s += v
	}
	out.Data[0] = s / n
	return out
}

// Sum returns the scalar sum of all elements.
func Sum(a *Tensor) *Tensor {
	out := child(1, 1, "sum", func(out *Tensor) {
		if a.requiresGrad {
			g := a.ensureGrad()
			v := out.Grad[0]
			for i := range g {
				g[i] += v
			}
		}
	}, a)
	var s float64
	for _, v := range a.Data {
		s += v
	}
	out.Data[0] = s
	return out
}

// unaryOp builds an elementwise op with derivative df(x, y) where y=f(x).
func unaryOp(a *Tensor, name string, f func(float64) float64, df func(x, y float64) float64) *Tensor {
	out := child(a.Rows, a.Cols, name, func(out *Tensor) {
		if a.requiresGrad {
			g := a.ensureGrad()
			for i, v := range out.Grad {
				g[i] += v * df(a.Data[i], out.Data[i])
			}
		}
	}, a)
	for i, v := range a.Data {
		out.Data[i] = f(v)
	}
	return out
}

// ReLU applies max(0, x) elementwise.
func ReLU(a *Tensor) *Tensor {
	return unaryOp(a, "relu",
		func(x float64) float64 {
			if x > 0 {
				return x
			}
			return 0
		},
		func(x, _ float64) float64 {
			if x > 0 {
				return 1
			}
			return 0
		})
}

// GELU applies the tanh-approximated Gaussian error linear unit.
func GELU(a *Tensor) *Tensor {
	const c = 0.7978845608028654 // sqrt(2/π)
	return unaryOp(a, "gelu",
		func(x float64) float64 {
			return 0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x)))
		},
		func(x, _ float64) float64 {
			t := math.Tanh(c * (x + 0.044715*x*x*x))
			dt := (1 - t*t) * c * (1 + 3*0.044715*x*x)
			return 0.5*(1+t) + 0.5*x*dt
		})
}

// Tanh applies tanh elementwise.
func Tanh(a *Tensor) *Tensor {
	return unaryOp(a, "tanh", math.Tanh, func(_, y float64) float64 { return 1 - y*y })
}

// Sigmoid applies the logistic function elementwise.
func Sigmoid(a *Tensor) *Tensor {
	return unaryOp(a, "sigmoid",
		func(x float64) float64 { return 1 / (1 + math.Exp(-x)) },
		func(_, y float64) float64 { return y * (1 - y) })
}

// Exp applies e^x elementwise.
func Exp(a *Tensor) *Tensor {
	return unaryOp(a, "exp", math.Exp, func(_, y float64) float64 { return y })
}

// Clamp limits values to [lo, hi]; gradients pass only inside the range.
func Clamp(a *Tensor, lo, hi float64) *Tensor {
	return unaryOp(a, "clamp",
		func(x float64) float64 { return math.Min(math.Max(x, lo), hi) },
		func(x, _ float64) float64 {
			if x < lo || x > hi {
				return 0
			}
			return 1
		})
}
