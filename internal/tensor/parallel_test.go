package tensor

import (
	"sync/atomic"
	"testing"

	"math/rand/v2"
)

func testRng() *rand.Rand {
	return rand.New(rand.NewPCG(11, 17))
}

// withParallelism runs fn at a fixed parallelism degree, restoring the
// previous setting afterwards.
func withParallelism(p int, fn func()) {
	prev := SetParallelism(p)
	defer SetParallelism(prev)
	fn()
}

// TestParallelForCoversAllIndices checks every index is visited exactly once
// at several degrees, including degrees above the index count.
func TestParallelForCoversAllIndices(t *testing.T) {
	for _, p := range []int{1, 2, 3, 8, 64} {
		for _, n := range []int{1, 2, 7, 100} {
			var visits [100]int32
			withParallelism(p, func() {
				// Large workPerItem forces the sharded path.
				ParallelFor(n, parallelThreshold, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&visits[i], 1)
					}
				})
			})
			for i := 0; i < n; i++ {
				if visits[i] != 1 {
					t.Fatalf("p=%d n=%d: index %d visited %d times", p, n, i, visits[i])
				}
			}
		}
	}
}

// runKernels exercises every sharded kernel forward and backward and
// returns all produced values and gradients.
func runKernels(rng *rand.Rand) [][]float64 {
	var out [][]float64
	collect := func(ts ...*Tensor) {
		for _, x := range ts {
			out = append(out, append([]float64(nil), x.Data...))
			if x.Grad != nil {
				out = append(out, append([]float64(nil), x.Grad...))
			}
		}
	}

	// MatMul forward + both gradient paths.
	a := Randn(64, 48, 1, rng).Param()
	b := Randn(48, 56, 1, rng).Param()
	mm := MatMul(a, b)
	Mean(mm).Backward()
	collect(a, b, mm)

	// Softmax + CausalSoftmax.
	s := Randn(96, 40, 1, rng).Param()
	sm := Softmax(s)
	Mean(Mul(sm, sm)).Backward()
	collect(s, sm)

	cs := Randn(64, 64, 1, rng).Param()
	csm := CausalSoftmax(cs)
	Mean(Mul(csm, csm)).Backward()
	collect(cs, csm)

	// LayerNorm with learned gain/bias.
	x := Randn(80, 48, 1, rng).Param()
	gain := Randn(1, 48, 1, rng).Param()
	bias := Randn(1, 48, 1, rng).Param()
	ln := LayerNorm(x, gain, bias, 1e-5)
	Mean(Mul(ln, ln)).Backward()
	collect(x, gain, bias, ln)

	// CrossEntropy with masked rows.
	logits := Randn(120, 24, 1, rng).Param()
	targets := make([]int, 120)
	for i := range targets {
		targets[i] = i % 24
		if i%11 == 0 {
			targets[i] = -1
		}
	}
	ce := CrossEntropy(logits, targets)
	ce.Backward()
	collect(logits, ce)

	return out
}

// TestKernelsBitIdenticalAcrossParallelism is the tensor-layer determinism
// guarantee: every sharded kernel produces bit-identical values and
// gradients at parallelism 1, 2 and 8 (same seed, same inputs).
func TestKernelsBitIdenticalAcrossParallelism(t *testing.T) {
	var ref [][]float64
	withParallelism(1, func() { ref = runKernels(testRng()) })
	for _, p := range []int{2, 8} {
		var got [][]float64
		withParallelism(p, func() { got = runKernels(testRng()) })
		if len(got) != len(ref) {
			t.Fatalf("parallelism %d: %d tensors, want %d", p, len(got), len(ref))
		}
		for ti := range ref {
			for i := range ref[ti] {
				if got[ti][i] != ref[ti][i] {
					t.Fatalf("parallelism %d: tensor %d element %d = %v, want %v (must be bit-identical)",
						p, ti, i, got[ti][i], ref[ti][i])
				}
			}
		}
	}
}

// TestSetParallelismRoundTrip checks the setter returns the previous value
// and that 0 restores the GOMAXPROCS default.
func TestSetParallelismRoundTrip(t *testing.T) {
	prev := SetParallelism(3)
	defer SetParallelism(prev)
	if got := Parallelism(); got != 3 {
		t.Fatalf("Parallelism() = %d, want 3", got)
	}
	if back := SetParallelism(0); back != 3 {
		t.Fatalf("SetParallelism returned %d, want 3", back)
	}
	if Parallelism() < 1 {
		t.Fatalf("default parallelism %d < 1", Parallelism())
	}
}
