package tensor

import "sync"

// Arena is a bump allocator for the float64 buffers that back the autograd
// tape: child tensor values, their gradients and per-op scratch (LayerNorm's
// row statistics, Dropout masks, CrossEntropy's probabilities). A training
// step allocates the same tape shape over and over; routing those buffers
// through an arena and calling Reset after each optimizer step reuses the
// same slabs every step instead of re-making them, which removes the
// allocation/GC cost from the training hot path.
//
// An arena hands out zeroed memory (New's contract) and never frees slabs;
// Reset rewinds the bump pointer so the next step reuses them. The caller
// owns the lifetime contract: memory obtained while an arena is active must
// not be used after the next Reset. Trainable parameters are unaffected —
// only tensors built by ops (and NewEphemeral) draw from the arena.
//
// Alloc and Reset are safe for concurrent use (generation probes may run
// tape ops on worker goroutines while a trainer holds the arena), but Reset
// must only be called when no live tensor still references arena memory.
type Arena struct {
	mu    sync.Mutex
	slabs [][]float64
	slab  int // index of the slab currently being bumped
	off   int // offset into slabs[slab]

	slabFloats int
	peak       int // high-water mark of floats in use, across Resets
}

// arenaSlabFloats is the default slab size (floats): 512 KiB per slab keeps
// slab count low for CPU-sized models while staying cache-polite.
const arenaSlabFloats = 1 << 16

// NewArena returns an empty arena; slabs are allocated on demand.
func NewArena() *Arena {
	return &Arena{slabFloats: arenaSlabFloats}
}

// Alloc returns a zeroed length-n slice carved from the arena.
func (a *Arena) Alloc(n int) []float64 {
	out := a.AllocRaw(n)
	clear(out)
	return out
}

// AllocRaw is Alloc without the zeroing pass: the returned slice holds
// whatever the recycled slab last held. Callers must overwrite every
// element (the op layer uses it for outputs that are fully written by the
// forward pass; gradients always go through the zeroing Alloc).
func (a *Arena) AllocRaw(n int) []float64 {
	if n == 0 {
		return nil
	}
	a.mu.Lock()
	for {
		if a.slab < len(a.slabs) {
			s := a.slabs[a.slab]
			if a.off+n <= len(s) {
				out := s[a.off : a.off+n : a.off+n]
				a.off += n
				a.mu.Unlock()
				return out
			}
			// Current slab exhausted for this request; move on. The stranded
			// tail is reclaimed at the next Reset.
			a.slab++
			a.off = 0
			continue
		}
		size := a.slabFloats
		if n > size {
			size = n // oversized requests get a dedicated slab
		}
		a.slabs = append(a.slabs, make([]float64, size))
	}
}

// Reset rewinds the arena so subsequent Allocs reuse the existing slabs.
// Every slice previously returned by Alloc becomes invalid.
func (a *Arena) Reset() {
	a.mu.Lock()
	if used := a.inUseLocked(); used > a.peak {
		a.peak = used
	}
	a.slab = 0
	a.off = 0
	a.mu.Unlock()
}

func (a *Arena) inUseLocked() int {
	used := a.off
	for i := 0; i < a.slab && i < len(a.slabs); i++ {
		used += len(a.slabs[i])
	}
	return used
}

// Footprint returns the total floats held by the arena's slabs.
func (a *Arena) Footprint() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	total := 0
	for _, s := range a.slabs {
		total += len(s)
	}
	return total
}

// Peak returns the high-water mark of floats in use observed at Reset time.
func (a *Arena) Peak() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if used := a.inUseLocked(); used > a.peak {
		return used
	}
	return a.peak
}

// activeArena is the ambient arena consulted by the op layer; nil means all
// tape buffers come from the heap (the pre-arena behavior).
var (
	arenaMu     sync.Mutex
	activeArena *Arena
)

// SetArena unconditionally installs a as the ambient arena for tape
// allocations and returns the previous one so callers can scope the
// override:
//
//	prev := tensor.SetArena(arena)
//	defer tensor.SetArena(prev)
//
// Passing nil restores heap allocation. This is the low-level setter (used
// by tests and benchmarks that own the whole process); trainers claim the
// slot through InstallArena instead so concurrent runs cannot stomp each
// other, and detach around callbacks with ArenaDetached. Whoever installs
// an arena is responsible for calling Reset only when no live tensor still
// references its memory.
func SetArena(a *Arena) (prev *Arena) {
	arenaMu.Lock()
	prev, activeArena = activeArena, a
	arenaMu.Unlock()
	return prev
}

// ActiveArena returns the ambient arena, or nil when tape buffers come from
// the heap.
func ActiveArena() *Arena {
	arenaMu.Lock()
	defer arenaMu.Unlock()
	return activeArena
}

// InstallArena atomically claims the ambient-arena slot for a: it installs
// a only when no arena is currently installed and reports whether it did.
// Trainers use this instead of SetArena so two arena-using training runs
// cannot interleave installs/Resets/detaches against each other — the
// loser of the race runs with heap tape allocation instead.
//
// The gate is NOT full concurrency isolation: the ambient arena is
// process-global, so tape ops on any other goroutine while an arena is
// installed will also draw from it and are then subject to the owner's
// Reset cycle. Running other tape-building work (training, tape-based
// generation) concurrently with an arena-owning trainer is unsupported;
// the in-repo trainers are sequential, and they detach the arena
// (ArenaDetached) around every callback that may run tape ops.
func InstallArena(a *Arena) bool {
	arenaMu.Lock()
	defer arenaMu.Unlock()
	if activeArena != nil {
		return false
	}
	activeArena = a
	return true
}

// UninstallArena clears the ambient-arena slot if a currently holds it.
func UninstallArena(a *Arena) {
	arenaMu.Lock()
	if activeArena == a {
		activeArena = nil
	}
	arenaMu.Unlock()
}

// ArenaDetached runs fn with the ambient arena detached, restoring it
// afterwards even if fn panics. Trainers wrap user callbacks (probes,
// epoch observers) in this so callback-allocated tensors are never tied to
// the trainer's Reset cycle. The restore is conditional: if another arena
// claimed the slot while fn ran, it is left in place.
func ArenaDetached(fn func()) {
	arenaMu.Lock()
	prev := activeArena
	activeArena = nil
	arenaMu.Unlock()
	defer func() {
		arenaMu.Lock()
		if activeArena == nil {
			activeArena = prev
		}
		arenaMu.Unlock()
	}()
	fn()
}

// allocFloats returns a zeroed length-n buffer from the ambient arena when
// one is installed, else from the heap. The bool reports arena ownership so
// tensors can route their gradient buffers the same way.
func allocFloats(n int) ([]float64, bool) {
	arenaMu.Lock()
	a := activeArena
	arenaMu.Unlock()
	if a == nil {
		return make([]float64, n), false
	}
	return a.Alloc(n), true
}

// allocFloatsRaw is allocFloats without the zeroing guarantee when an arena
// is active (heap allocations are always zeroed by the runtime). Used for
// tensor values that every op fully overwrites; ops that rely on
// zero-initialized output (CausalSoftmax's masked triangle, MeanRows'
// accumulator) clear it explicitly.
func allocFloatsRaw(n int) ([]float64, bool) {
	arenaMu.Lock()
	a := activeArena
	arenaMu.Unlock()
	if a == nil {
		return make([]float64, n), false
	}
	return a.AllocRaw(n), true
}
