package tensor

import (
	"fmt"
	"math"
	"testing"

	"cptgpt/internal/stats"
)

// gemmF32Ref is a straightforward float64-accumulated reference.
func gemmF32Ref(dst, wT, bias, x []float32, rows, in, out int) {
	for r := 0; r < rows; r++ {
		for j := 0; j < out; j++ {
			acc := float64(bias[j])
			for i := 0; i < in; i++ {
				acc += float64(x[r*in+i]) * float64(wT[j*in+i])
			}
			dst[r*out+j] = float32(acc)
		}
	}
}

func randF32(n int, seed uint64) []float32 {
	rng := stats.NewRand(seed)
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return s
}

// TestGemmF32Shapes exercises both kernels over awkward shapes (reduction
// tails shorter than every unroll width, 1-row and odd-output panels),
// comparing against the float64 reference within a float32 reduction-error
// tolerance.
func TestGemmF32Shapes(t *testing.T) {
	shapes := []struct{ rows, in, out int }{
		{1, 1, 1}, {1, 7, 3}, {2, 8, 2}, {3, 10, 5}, {4, 128, 128},
		{5, 128, 1024}, {4, 1024, 128}, {2, 33, 7}, {3, 40, 6}, {6, 64, 2},
		{1, 130, 1}, {7, 9, 9},
	}
	for _, asm := range []bool{false, true} {
		if asm && !gemmAsmAvailable {
			continue
		}
		prev := SetGemmF32Asm(asm)
		for _, s := range shapes {
			wT := randF32(s.out*s.in, 1)
			bias := randF32(s.out, 2)
			x := randF32(s.rows*s.in, 3)
			got := make([]float32, s.rows*s.out)
			want := make([]float32, s.rows*s.out)
			GemmF32(got, wT, bias, x, s.rows, s.in, s.out)
			gemmF32Ref(want, wT, bias, x, s.rows, s.in, s.out)
			for i := range want {
				diff := math.Abs(float64(got[i] - want[i]))
				// Allow float32 reduction error growing with the length.
				tol := 1e-5 * (1 + math.Abs(float64(want[i]))) * math.Sqrt(float64(s.in))
				if diff > tol || math.IsNaN(float64(got[i])) {
					t.Fatalf("asm=%v shape %v: dst[%d] = %v, want %v (|Δ| %.2e > %.2e)",
						asm, s, i, got[i], want[i], diff, tol)
				}
			}
		}
		SetGemmF32Asm(prev)
	}
}

// TestGemmF32ScalarMatchesMatVec pins the fallback's bit-compatibility
// contract: a k-row scalar GEMM equals k independent MatVecF32 calls exactly,
// which is what makes speculative verification bit-identical to plain
// stepping on machines without the assembly kernel.
func TestGemmF32ScalarMatchesMatVec(t *testing.T) {
	const rows, in, out = 5, 128, 67
	wT := randF32(out*in, 4)
	bias := randF32(out, 5)
	x := randF32(rows*in, 6)
	got := make([]float32, rows*out)
	gemmF32Scalar(got, wT, bias, x, rows, in, out)
	want := make([]float32, out)
	for r := 0; r < rows; r++ {
		MatVecF32(want, wT, bias, x[r*in:(r+1)*in], in, out)
		for j := range want {
			if got[r*out+j] != want[j] {
				t.Fatalf("row %d out %d: gemm %v != matvec %v", r, j, got[r*out+j], want[j])
			}
		}
	}
}

// TestGemmF32Deterministic requires repeated calls to produce identical bits
// (each kernel has a fixed reduction order).
func TestGemmF32Deterministic(t *testing.T) {
	const rows, in, out = 4, 129, 33
	wT := randF32(out*in, 7)
	bias := randF32(out, 8)
	x := randF32(rows*in, 9)
	for _, asm := range []bool{false, true} {
		if asm && !gemmAsmAvailable {
			continue
		}
		prev := SetGemmF32Asm(asm)
		a := make([]float32, rows*out)
		b := make([]float32, rows*out)
		GemmF32(a, wT, bias, x, rows, in, out)
		GemmF32(b, wT, bias, x, rows, in, out)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("asm=%v: nondeterministic at %d: %v vs %v", asm, i, a[i], b[i])
			}
		}
		SetGemmF32Asm(prev)
	}
}

// TestGemmF32KillSwitch pins SetGemmF32Asm semantics: it reports the prior
// state, never enables beyond platform capability, and GemmF32Asm tracks it.
func TestGemmF32KillSwitch(t *testing.T) {
	orig := GemmF32Asm()
	defer SetGemmF32Asm(orig)
	if prev := SetGemmF32Asm(false); prev != orig {
		t.Fatalf("SetGemmF32Asm(false) reported prev %v, want %v", prev, orig)
	}
	if GemmF32Asm() {
		t.Fatal("kill switch did not disable the asm kernel")
	}
	SetGemmF32Asm(true)
	if GemmF32Asm() != gemmAsmAvailable {
		t.Fatalf("enabling asm: got %v, want capability %v", GemmF32Asm(), gemmAsmAvailable)
	}
}

// BenchmarkGemmF32 times the kernels at the verify pass's dominant shape
// (k=5 rows against the paper-scale FF panels).
func BenchmarkGemmF32(b *testing.B) {
	for _, c := range []struct {
		name          string
		rows, in, out int
	}{
		{"5x128x1024", 5, 128, 1024},
		{"5x1024x128", 5, 1024, 128},
		{"5x128x128", 5, 128, 128},
		{"1x128x128", 1, 128, 128},
	} {
		wT := randF32(c.out*c.in, 1)
		bias := randF32(c.out, 2)
		x := randF32(c.rows*c.in, 3)
		dst := make([]float32, c.rows*c.out)
		for _, asm := range []bool{true, false} {
			if asm && !gemmAsmAvailable {
				continue
			}
			name := fmt.Sprintf("%s/asm=%v", c.name, asm)
			b.Run(name, func(b *testing.B) {
				prev := SetGemmF32Asm(asm)
				defer SetGemmF32Asm(prev)
				b.SetBytes(int64(4 * c.in * c.out))
				for i := 0; i < b.N; i++ {
					GemmF32(dst, wT, bias, x, c.rows, c.in, c.out)
				}
				b.ReportMetric(float64(b.N)*float64(c.rows)*float64(c.in)*float64(c.out)/b.Elapsed().Seconds()/1e9, "GMAC/s")
			})
		}
	}
}
