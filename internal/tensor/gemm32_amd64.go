//go:build amd64

package tensor

// hasGemmAsm reports whether this CPU can run the AVX2+FMA GEMM kernel.
// Detection is a one-shot CPUID/XGETBV probe (see gemm32_amd64.s): FMA, AVX
// and OSXSAVE from leaf 1, OS-enabled XMM+YMM state from XCR0, and AVX2 from
// leaf 7 — the exact feature set the kernel's VFMADD231PS/VMOVUPS mix needs.
func hasGemmAsm() bool { return cpuHasAVX2FMA() }

// cpuHasAVX2FMA is implemented in gemm32_amd64.s.
func cpuHasAVX2FMA() bool

// gemmF32Asm computes dst[r*out+j] = bias[j] + x[r*in:]·wT[j*in:] with the
// AVX2+FMA kernel. All slices must be fully in bounds (the GemmF32 wrapper
// hoists the checks); rows, in, out must be positive. The reduction order —
// four 8-lane accumulators combined pairwise, then an 8-lane horizontal tree
// sum, scalar tail last — is fixed, so results are deterministic.
//
//go:noescape
func gemmF32Asm(dst, wT, bias, x *float32, rows, in, out int)
