package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The generation engine shards its hot kernels (MatMul, Softmax, LayerNorm,
// CrossEntropy, batched decoding) across a persistent goroutine worker pool.
// Sharding is always row-wise over independent rows, so results are
// bit-identical to the serial path regardless of the configured degree or
// the number of pool workers — determinism tests in parallel_test.go pin
// this property down.

// parallelism holds the configured degree; 0 means "use GOMAXPROCS".
var parallelism atomic.Int32

// SetParallelism sets the process-global parallelism degree used by the
// tensor kernels and by ParallelFor. n ≤ 0 restores the default
// (GOMAXPROCS). It returns the previous setting (0 = default) so callers
// can scope an override:
//
//	prev := tensor.SetParallelism(8)
//	defer tensor.SetParallelism(prev)
func SetParallelism(n int) (prev int) {
	if n < 0 {
		n = 0
	}
	return int(parallelism.Swap(int32(n)))
}

// Parallelism returns the effective parallelism degree: the value set by
// SetParallelism, or GOMAXPROCS when unset.
func Parallelism() int {
	if n := parallelism.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// shard is one unit of pool work: run fn over [lo, hi) and signal wg.
type shard struct {
	fn     func(lo, hi int)
	lo, hi int
	wg     *sync.WaitGroup
}

// shardCh feeds the persistent workers. The buffer lets a submitter enqueue
// a full fan-out without blocking even when every worker is busy.
var shardCh = make(chan shard, 256)

// spawned tracks how many pool workers exist; workers are started lazily and
// live for the whole process (the pool is tiny: at most the highest degree
// ever requested).
var spawned atomic.Int32

// workerLoad is one pool worker's load accounting, all atomics in the
// cptgpt.DecodeStats idiom: the worker writes on its hot path, PoolLoad
// aggregates from any goroutine without synchronizing against the pool.
type workerLoad struct {
	// validPolls counts channel receives that yielded a shard; emptyPolls
	// counts the times the worker found the queue empty and had to block.
	// items accumulates the index-range width of every executed shard, so
	// items/validPolls is the mean shard size this worker has seen.
	validPolls atomic.Int64
	emptyPolls atomic.Int64
	items      atomic.Int64
}

// workerLoads registers every worker's counters (append-only, guarded by
// workerLoadsMu; readers copy the slice header under the lock and then read
// atomics lock-free).
var (
	workerLoadsMu sync.Mutex
	workerLoads   []*workerLoad
)

// PoolLoadStats is an aggregate snapshot of the worker pool's load
// counters since process start. Deltas between snapshots give a run or
// scrape window's pool utilization: a high empty-poll share means workers
// mostly wait (the pool is over-provisioned for the workload), a high
// items-per-poll means big shards (good amortization of hand-off cost).
type PoolLoadStats struct {
	// Workers is the number of pool workers spawned so far.
	Workers int
	// ValidPolls / EmptyPolls / Items aggregate the per-worker counters.
	ValidPolls int64
	EmptyPolls int64
	Items      int64
}

// PoolLoad snapshots the pool's aggregate load counters.
func PoolLoad() PoolLoadStats {
	workerLoadsMu.Lock()
	loads := workerLoads
	workerLoadsMu.Unlock()
	st := PoolLoadStats{Workers: len(loads)}
	for _, wl := range loads {
		st.ValidPolls += wl.validPolls.Load()
		st.EmptyPolls += wl.emptyPolls.Load()
		st.Items += wl.items.Load()
	}
	return st
}

func ensureWorkers(n int) {
	for {
		cur := spawned.Load()
		if int(cur) >= n {
			return
		}
		if spawned.CompareAndSwap(cur, cur+1) {
			wl := &workerLoad{}
			workerLoadsMu.Lock()
			workerLoads = append(workerLoads, wl)
			workerLoadsMu.Unlock()
			go func() {
				run := func(s shard) {
					wl.validPolls.Add(1)
					wl.items.Add(int64(s.hi - s.lo))
					s.fn(s.lo, s.hi)
					s.wg.Done()
				}
				for {
					// Non-blocking poll first so the empty/valid split is
					// observable; an empty queue is counted once and then
					// waited on (no spinning).
					select {
					case s := <-shardCh:
						run(s)
					default:
						wl.emptyPolls.Add(1)
						run(<-shardCh)
					}
				}
			}()
		}
	}
}

// wgPool recycles the WaitGroups that coordinate each fan-out, keeping the
// steady-state cost of a parallel call allocation-free.
var wgPool = sync.Pool{New: func() any { return new(sync.WaitGroup) }}

// parallelThreshold is the work size (in scalar multiply-adds or
// comparable units) above which a kernel shards across the pool; below it
// the goroutine hand-off costs more than it saves.
const parallelThreshold = 1 << 15

// ParallelFor runs fn over the index range [0, n), sharded across the
// worker pool when n·workPerItem exceeds the parallel threshold and the
// effective parallelism is > 1; otherwise it runs inline. fn must treat
// each index independently: ParallelFor guarantees every index is covered
// exactly once but says nothing about order or goroutine assignment.
// Results must therefore be bit-identical for every degree, which is what
// keeps batched generation deterministic.
func ParallelFor(n, workPerItem int, fn func(lo, hi int)) {
	p := Parallelism()
	if p <= 1 || n < 2 || n*workPerItem < parallelThreshold {
		fn(0, n)
		return
	}
	if p > n {
		p = n
	}
	ensureWorkers(p - 1)
	wg := wgPool.Get().(*sync.WaitGroup)
	chunk := (n + p - 1) / p
	// Shards 1..p-1 go to the pool; the submitting goroutine runs shard 0
	// itself so the pool never needs more than degree−1 workers.
	for w := 1; w < p; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		shardCh <- shard{fn: fn, lo: lo, hi: hi, wg: wg}
	}
	hi := chunk
	if hi > n {
		hi = n
	}
	fn(0, hi)
	wg.Wait()
	wgPool.Put(wg)
}

// bufPool recycles float64 scratch slices used inside kernels (per-row loss
// accumulators and the like). Slices are held by pointer so Put does not
// allocate an interface box.
var bufPool = sync.Pool{New: func() any { b := make([]float64, 0, 1024); return &b }}

// getBuf returns a zeroed scratch slice of length n from the pool, paired
// with the pool handle to pass back to putBuf.
func getBuf(n int) (buf []float64, handle *[]float64) {
	buf, handle = getRawBuf(n)
	clear(buf)
	return buf, handle
}

// getRawBuf is getBuf without the zeroing pass, for scratch that the caller
// fully overwrites (e.g. the packed operand panels of the blocked MatMul).
func getRawBuf(n int) (buf []float64, handle *[]float64) {
	handle = bufPool.Get().(*[]float64)
	b := *handle
	if cap(b) < n {
		b = make([]float64, n)
		*handle = b
	}
	return b[:n], handle
}

// putBuf returns a scratch slice to the pool.
func putBuf(handle *[]float64) {
	bufPool.Put(handle)
}
