package replaynet

// SLO-search controller: finds the maximum sustained offered load (events/s)
// a replaynet server can absorb while the p99 send→acknowledge transaction
// latency stays within an SLO. The controller rides on the closed-loop
// driver: it paces transmissions at a candidate rate, measures each probe
// window's p99 out of the O(1)-memory log-bucket histogram, and steers the
// rate with a multiplicative ramp followed by geometric bisection. The
// decision logic is a pure state machine (sloSearchState) so convergence is
// deterministic given the sequence of window verdicts — the only
// nondeterminism left is the measured latency itself.

import (
	"errors"
	"math"
	"time"

	"cptgpt/internal/events"
	"cptgpt/internal/mcn"
)

// SearchOpts tunes the SLO search.
type SearchOpts struct {
	// SLOP99 is the p99 transaction-latency objective. Required.
	SLOP99 time.Duration
	// InitialRate is the first probe's offered rate in events/s; default 200.
	InitialRate float64
	// WindowEvents is the number of acknowledged transactions per probe
	// window; default 400.
	WindowEvents int
	// RampFactor multiplies the rate while no upper bound is known (and
	// divides it while no lower bound is known); default 2.
	RampFactor float64
	// Tolerance stops the bisection once hi/lo ≤ 1+Tolerance; default 0.25.
	Tolerance float64
	// MaxRounds bounds the number of probe windows; default 16.
	MaxRounds int
	// MinAchievedFrac: a window only passes if the achieved ack rate is at
	// least this fraction of the offered rate (otherwise the server is
	// saturated even if queues hide it from p99); default 0.85.
	MinAchievedFrac float64
}

func (o SearchOpts) withDefaults() SearchOpts {
	if o.InitialRate <= 0 {
		o.InitialRate = 200
	}
	if o.WindowEvents <= 0 {
		o.WindowEvents = 400
	}
	if o.RampFactor <= 1 {
		o.RampFactor = 2
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 0.25
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 16
	}
	if o.MinAchievedFrac <= 0 || o.MinAchievedFrac > 1 {
		o.MinAchievedFrac = 0.85
	}
	return o
}

// ProbeRound records one probe window's verdict.
type ProbeRound struct {
	// Rate is the offered rate (events/s); Achieved the measured ack rate.
	Rate     float64       `json:"rate"`
	Achieved float64       `json:"achieved"`
	P99      time.Duration `json:"p99"`
	Mean     time.Duration `json:"mean"`
	Events   int           `json:"events"`
	Met      bool          `json:"met"`
}

// SearchResult is the outcome of an SLO search.
type SearchResult struct {
	// MaxRate is the highest offered rate that met the SLO (the converged
	// lower bound), 0 if no probed rate ever met it.
	MaxRate float64 `json:"max_rate"`
	// Converged reports whether the bracket tightened to within Tolerance
	// before the round budget or the event source ran out.
	Converged bool `json:"converged"`
	// Rounds are the probe windows in order.
	Rounds []ProbeRound `json:"rounds"`
	// Transport is the underlying closed-loop replay's transport summary.
	Transport ClosedStats `json:"transport"`
}

// sloSearchState is the pure rate-steering state machine: feed it one
// verdict per probe window via observe and read the next offered rate from
// rate. Exact-arithmetic determinism — given the same verdict sequence it
// always visits the same rates.
type sloSearchState struct {
	o      SearchOpts
	lo, hi float64 // bracket; hi == 0 means "no violation seen yet"
	rate   float64
	rounds int

	done      bool
	converged bool
}

func newSLOSearchState(o SearchOpts) *sloSearchState {
	return &sloSearchState{o: o, rate: o.InitialRate}
}

// observe folds one window verdict and steers the next probe rate:
// multiplicative ramp while the capacity is unbracketed, then geometric
// bisection (sqrt(lo·hi)) until hi/lo ≤ 1+Tolerance.
func (st *sloSearchState) observe(met bool) {
	if st.done {
		return
	}
	st.rounds++
	if met {
		if st.rate > st.lo {
			st.lo = st.rate
		}
	} else if st.hi == 0 || st.rate < st.hi {
		st.hi = st.rate
	}
	if st.lo > 0 && st.hi > 0 && st.hi/st.lo <= 1+st.o.Tolerance {
		st.done, st.converged = true, true
		return
	}
	if st.rounds >= st.o.MaxRounds {
		st.done = true
		return
	}
	switch {
	case st.hi == 0:
		st.rate = st.lo * st.o.RampFactor
	case st.lo == 0:
		st.rate = st.hi / st.o.RampFactor
	default:
		st.rate = math.Sqrt(st.lo * st.hi)
	}
}

// SLOSearch drives src against a replaynet server in closed loop, ramping
// the offered event rate to find the maximum sustained load whose p99
// transaction latency stays within search.SLOP99. The source must be long
// enough to feed MaxRounds probe windows; if it runs dry first the result
// carries Converged=false and the best bracket found so far.
func SLOSearch(addr string, gen events.Generation, src EventSource, opts ClosedOpts, search SearchOpts) (SearchResult, error) {
	if search.SLOP99 <= 0 {
		return SearchResult{}, errors.New("replaynet: SLOSearch requires a positive SLOP99")
	}
	search = search.withDefaults()
	opts.Speedup = 0 // the controller owns pacing

	st := newSLOSearchState(search)
	result := SearchResult{}
	slo := search.SLOP99.Seconds()

	winHist := mcn.NewLatencyHist()
	var winStart time.Time  // wall start of the current window's ack count
	var winSendBase float64 // send index at window start
	var sendIdx float64

	// due paces sends uniformly at the current probe rate.
	due := func(ReplayEvent) time.Time {
		if winStart.IsZero() {
			winStart = time.Now()
		}
		return winStart.Add(time.Duration((sendIdx - winSendBase) / st.rate * float64(time.Second)))
	}
	onSend := func() { sendIdx++ }
	onAck := func(n int, now time.Time) bool {
		if st.done {
			return false // already decided; in-flight acks are just drained
		}
		if winHist.Count() < search.WindowEvents {
			return true
		}
		p99 := winHist.Quantile(0.99)
		mean := winHist.Mean()
		elapsed := now.Sub(winStart).Seconds()
		achieved := 0.0
		if elapsed > 0 {
			achieved = float64(winHist.Count()) / elapsed
		}
		met := p99 <= slo && achieved >= search.MinAchievedFrac*st.rate
		result.Rounds = append(result.Rounds, ProbeRound{
			Rate:     st.rate,
			Achieved: achieved,
			P99:      time.Duration(p99 * 1e9),
			Mean:     time.Duration(mean * 1e9),
			Events:   winHist.Count(),
			Met:      met,
		})
		st.observe(met)
		if st.done {
			return false // stop pulling the source; in-flight events drain
		}
		// Next window: fresh histogram, fresh wall base, pace from the
		// current send index so the new rate applies immediately.
		winHist.Reset()
		winStart = now
		winSendBase = sendIdx
		return true
	}
	hooks := closedHooks{due: due, onSend: onSend, onAck: onAck}
	transport, err := runClosed(addr, gen, src, opts, hooks, winHist)
	if err != nil {
		return SearchResult{}, err
	}
	result.Transport = transport
	result.MaxRate = st.lo
	result.Converged = st.converged
	return result, nil
}
