package replaynet

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"cptgpt/internal/events"
	"cptgpt/internal/faultnet"
	"cptgpt/internal/statemachine"
)

// Stats is the server-side accounting returned to drivers on request.
type Stats struct {
	// Events is the number of EVENT/SEVENT frames accepted; Rejected counts
	// events that violated the UE state machine.
	Events   int `json:"events"`
	Rejected int `json:"rejected"`
	// Duplicates counts closed-loop events suppressed by session sequence
	// tracking (a retransmission of an already-applied event) — they are
	// acknowledged but never re-applied, which is what keeps reconnecting
	// drivers exactly-once.
	Duplicates int `json:"duplicates,omitempty"`
	// ConnectedUEs is the current number of UEs in the CONNECTED state;
	// PeakConnectedUEs its high-water mark.
	ConnectedUEs     int `json:"connected_ues"`
	PeakConnectedUEs int `json:"peak_connected_ues"`
	// ByType counts accepted events per type name.
	ByType map[string]int `json:"by_type"`
}

// ServerOpts tunes a server beyond the open-loop defaults. The zero value
// reproduces the pre-closed-loop behavior exactly.
type ServerOpts struct {
	// ServiceTime, when positive, is the per-event processing time: the
	// connection's read loop sleeps this long for every accepted event,
	// bounding the per-connection consumption rate at 1/ServiceTime — the
	// knob that turns the server into a rate-limited NF stand-in for
	// closed-loop controller tests and benchmarks.
	ServiceTime time.Duration
	// AckEvery bounds how many applied closed-loop events may pass between
	// ACK frames; an ACK is also emitted whenever the read buffer drains
	// (the natural batch boundary). 0 means DefaultAckEvery.
	AckEvery int
	// Fault, when non-nil, wraps every accepted connection in a
	// deterministic fault-injection schedule (per-connection seeds derived
	// from Fault.Seed and the accept ordinal).
	Fault *faultnet.Config
}

// DefaultAckEvery is the default ServerOpts.AckEvery.
const DefaultAckEvery = 32

// session is the per-driver closed-loop delivery state, keyed by the
// client-chosen session ID and persistent across that driver's reconnects.
type session struct {
	applied uint64 // highest contiguously applied sequence number
}

// Server is an MCN control-plane frontend: it accepts driver connections,
// consumes EVENT frames, validates them against the 3GPP state machine and
// keeps per-UE state, mirroring a stateful core implementation. Closed-loop
// drivers (CHELLO/SEVENT) additionally get per-session cumulative ACKs with
// exactly-once application across reconnects.
type Server struct {
	ln   net.Listener
	gen  events.Generation
	opts ServerOpts

	mu       sync.Mutex
	stats    Stats
	ueState  map[uint32]statemachine.State
	ueBoot   map[uint32]bool
	sessions map[uint64]*session
	closed   bool
	wg       sync.WaitGroup
}

// ListenAndServe starts a server on addr (e.g. "127.0.0.1:0") for the given
// generation. It returns once the listener is ready; connections are served
// on background goroutines until Close.
func ListenAndServe(addr string, gen events.Generation) (*Server, error) {
	return ListenAndServeOpts(addr, gen, ServerOpts{})
}

// ListenAndServeOpts is ListenAndServe with explicit server options.
func ListenAndServeOpts(addr string, gen events.Generation, opts ServerOpts) (*Server, error) {
	if opts.Fault != nil {
		if err := opts.Fault.Validate(); err != nil {
			return nil, err
		}
	}
	if opts.AckEvery <= 0 {
		opts.AckEvery = DefaultAckEvery
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("replaynet: listen %s: %w", addr, err)
	}
	if opts.Fault != nil {
		ln = faultnet.WrapListener(ln, *opts.Fault)
	}
	s := &Server{
		ln:       ln,
		gen:      gen,
		opts:     opts,
		ueState:  make(map[uint32]statemachine.State),
		ueBoot:   make(map[uint32]bool),
		sessions: make(map[uint64]*session),
	}
	s.stats.ByType = make(map[string]int)
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener address (useful with port 0).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting and waits for in-flight connections to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Snapshot returns a copy of the current stats.
func (s *Server) Snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := s.stats
	cp.ByType = make(map[string]int, len(s.stats.ByType))
	for k, v := range s.stats.ByType {
		cp.ByType[k] = v
	}
	return cp
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// lookupSession returns (creating if needed) the session for id.
func (s *Server) lookupSession(id uint64) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessions[id]
	if sess == nil {
		sess = &session{}
		s.sessions[id] = sess
	}
	return sess
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	machine := statemachine.New(s.gen)

	var sess *session // non-nil once a CHELLO arrives
	var ackBuf [8]byte
	sinceAck := 0
	// flushAck emits a cumulative ACK for the session's applied seq.
	flushAck := func() bool {
		if sess == nil {
			return true
		}
		s.mu.Lock()
		applied := sess.applied
		s.mu.Unlock()
		if err := writeFrame(bw, frameAck, ackPayload(ackBuf[:], applied)); err != nil {
			return false
		}
		if err := bw.Flush(); err != nil {
			return false
		}
		sinceAck = 0
		return true
	}

	for {
		t, payload, err := readFrame(br)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				// A malformed frame; nothing useful to answer.
				_ = err
			}
			return
		}
		switch t {
		case frameHello:
			// Generation negotiation: reject mismatches by closing.
			if len(payload) != 1 || events.Generation(payload[0]) != s.gen {
				return
			}
		case frameClosedHello:
			gen, id, err := decodeClosedHello(payload)
			if err != nil || events.Generation(gen) != s.gen {
				return
			}
			sess = s.lookupSession(id)
			// The resume handshake: tell the (re)connecting driver exactly
			// where the session stands so it resends only unapplied events.
			if !flushAck() {
				return
			}
		case frameEvent:
			ue, _, evb, err := decodeEvent(payload)
			if err != nil {
				return
			}
			ev := events.Type(evb)
			if !ev.Valid() {
				return
			}
			if s.opts.ServiceTime > 0 {
				time.Sleep(s.opts.ServiceTime)
			}
			s.consume(machine, ue, ev)
		case frameSeqEvent:
			if sess == nil {
				return // sequenced events require a closed-loop hello
			}
			seq, ue, _, evb, err := decodeSeqEvent(payload)
			if err != nil {
				return
			}
			ev := events.Type(evb)
			if !ev.Valid() {
				return
			}
			s.mu.Lock()
			applied := sess.applied
			switch {
			case seq <= applied:
				// A retransmission of an already-applied event: count it,
				// never re-apply — the exactly-once half of the contract.
				s.stats.Duplicates++
				s.mu.Unlock()
			case seq == applied+1:
				sess.applied = seq
				s.mu.Unlock()
				if s.opts.ServiceTime > 0 {
					time.Sleep(s.opts.ServiceTime)
				}
				s.consume(machine, ue, ev)
				sinceAck++
			default:
				// A gap: the driver always sends contiguously within one
				// connection, so this is a protocol violation (e.g. bytes
				// lost by a faulty link) — drop the connection and let the
				// driver reconnect and resync from the resume ACK.
				s.mu.Unlock()
				return
			}
			// Ack per batch: when the read buffer drains (no more frames
			// immediately pending) or every AckEvery applied events.
			if sinceAck >= s.opts.AckEvery || br.Buffered() == 0 {
				if !flushAck() {
					return
				}
			}
		case frameStats:
			st := s.Snapshot()
			body, err := json.Marshal(st)
			if err != nil {
				return
			}
			if err := writeFrame(bw, frameReport, body); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
		case frameBye:
			return
		default:
			return // unknown frame: drop the connection
		}
	}
}

// consume applies one event to the stateful UE table.
func (s *Server) consume(machine statemachine.Machine, ue uint32, ev events.Type) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Events++
	s.stats.ByType[ev.String()]++

	prevTop := statemachine.Top(s.ueState[ue])
	if !s.ueBoot[ue] {
		if st, ok := machine.Bootstrap(ev); ok {
			s.ueState[ue] = st
			s.ueBoot[ue] = true
		}
	} else {
		next, ok := machine.Step(s.ueState[ue], ev)
		if !ok {
			s.stats.Rejected++
			return
		}
		s.ueState[ue] = next
	}
	top := statemachine.Top(s.ueState[ue])
	if top != prevTop {
		switch {
		case top == statemachine.TopConnected:
			s.stats.ConnectedUEs++
			if s.stats.ConnectedUEs > s.stats.PeakConnectedUEs {
				s.stats.PeakConnectedUEs = s.stats.ConnectedUEs
			}
		case prevTop == statemachine.TopConnected:
			s.stats.ConnectedUEs--
		}
	}
}
