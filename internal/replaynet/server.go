package replaynet

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"cptgpt/internal/events"
	"cptgpt/internal/statemachine"
)

// Stats is the server-side accounting returned to drivers on request.
type Stats struct {
	// Events is the number of EVENT frames accepted; Rejected counts
	// events that violated the UE state machine.
	Events   int `json:"events"`
	Rejected int `json:"rejected"`
	// ConnectedUEs is the current number of UEs in the CONNECTED state;
	// PeakConnectedUEs its high-water mark.
	ConnectedUEs     int `json:"connected_ues"`
	PeakConnectedUEs int `json:"peak_connected_ues"`
	// ByType counts accepted events per type name.
	ByType map[string]int `json:"by_type"`
}

// Server is an MCN control-plane frontend: it accepts driver connections,
// consumes EVENT frames, validates them against the 3GPP state machine and
// keeps per-UE state, mirroring a stateful core implementation.
type Server struct {
	ln  net.Listener
	gen events.Generation

	mu      sync.Mutex
	stats   Stats
	ueState map[uint32]statemachine.State
	ueBoot  map[uint32]bool
	closed  bool
	wg      sync.WaitGroup
}

// ListenAndServe starts a server on addr (e.g. "127.0.0.1:0") for the given
// generation. It returns once the listener is ready; connections are served
// on background goroutines until Close.
func ListenAndServe(addr string, gen events.Generation) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("replaynet: listen %s: %w", addr, err)
	}
	s := &Server{
		ln:      ln,
		gen:     gen,
		ueState: make(map[uint32]statemachine.State),
		ueBoot:  make(map[uint32]bool),
	}
	s.stats.ByType = make(map[string]int)
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener address (useful with port 0).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting and waits for in-flight connections to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Snapshot returns a copy of the current stats.
func (s *Server) Snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := s.stats
	cp.ByType = make(map[string]int, len(s.stats.ByType))
	for k, v := range s.stats.ByType {
		cp.ByType[k] = v
	}
	return cp
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	machine := statemachine.New(s.gen)

	for {
		t, payload, err := readFrame(br)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				// A malformed frame; nothing useful to answer.
				_ = err
			}
			return
		}
		switch t {
		case frameHello:
			// Generation negotiation: reject mismatches by closing.
			if len(payload) != 1 || events.Generation(payload[0]) != s.gen {
				return
			}
		case frameEvent:
			ue, _, evb, err := decodeEvent(payload)
			if err != nil {
				return
			}
			ev := events.Type(evb)
			if !ev.Valid() {
				return
			}
			s.consume(machine, ue, ev)
		case frameStats:
			st := s.Snapshot()
			body, err := json.Marshal(st)
			if err != nil {
				return
			}
			if err := writeFrame(bw, frameReport, body); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
		case frameBye:
			return
		default:
			return // unknown frame: drop the connection
		}
	}
}

// consume applies one event to the stateful UE table.
func (s *Server) consume(machine statemachine.Machine, ue uint32, ev events.Type) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Events++
	s.stats.ByType[ev.String()]++

	prevTop := statemachine.Top(s.ueState[ue])
	if !s.ueBoot[ue] {
		if st, ok := machine.Bootstrap(ev); ok {
			s.ueState[ue] = st
			s.ueBoot[ue] = true
		}
	} else {
		next, ok := machine.Step(s.ueState[ue], ev)
		if !ok {
			s.stats.Rejected++
			return
		}
		s.ueState[ue] = next
	}
	top := statemachine.Top(s.ueState[ue])
	if top != prevTop {
		switch {
		case top == statemachine.TopConnected:
			s.stats.ConnectedUEs++
			if s.stats.ConnectedUEs > s.stats.PeakConnectedUEs {
				s.stats.PeakConnectedUEs = s.stats.ConnectedUEs
			}
		case prevTop == statemachine.TopConnected:
			s.stats.ConnectedUEs--
		}
	}
}
