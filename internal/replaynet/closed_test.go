package replaynet

import (
	"math"
	"testing"
	"time"

	"cptgpt/internal/events"
	"cptgpt/internal/faultnet"
)

// seqSource yields n events with 10ms trace spacing, cycling UEs through
// attach/detach pairs.
func seqSource(n int) EventSource {
	i := 0
	return sourceFunc(func() (ReplayEvent, bool, error) {
		if i >= n {
			return ReplayEvent{}, false, nil
		}
		ev := ReplayEvent{
			Time: float64(i) * 0.01,
			UE:   uint64((i / 2) % 16),
			Type: events.Attach,
		}
		if i%2 == 1 {
			ev.Type = events.Detach
		}
		i++
		return ev, true, nil
	})
}

// fastOpts returns ClosedOpts tuned for quick, deterministic tests.
func fastOpts(session uint64) ClosedOpts {
	return ClosedOpts{
		SessionID:           session,
		MinRTO:              30 * time.Millisecond,
		MaxRTO:              500 * time.Millisecond,
		InitialRTO:          100 * time.Millisecond,
		ReconnectBackoff:    2 * time.Millisecond,
		MaxReconnectBackoff: 50 * time.Millisecond,
	}
}

func TestClosedLoopCleanDelivery(t *testing.T) {
	srv, err := ListenAndServe("127.0.0.1:0", events.Gen4G)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const n = 500
	st, err := ReplayClosed(srv.Addr().String(), events.Gen4G, seqSource(n), fastOpts(101))
	if err != nil {
		t.Fatal(err)
	}
	if st.Server.Events != n {
		t.Fatalf("server applied %d events, want %d", st.Server.Events, n)
	}
	if st.Acked != n || st.Sent != n {
		t.Fatalf("sent=%d acked=%d, want %d/%d", st.Sent, st.Acked, n, n)
	}
	if st.Retransmits != 0 || st.Reconnects != 0 {
		t.Fatalf("clean network saw retx=%d reconnects=%d", st.Retransmits, st.Reconnects)
	}
	if st.Server.Duplicates != 0 {
		t.Fatalf("clean network saw %d duplicates", st.Server.Duplicates)
	}
	if st.P99Latency <= 0 || st.MeanLatency <= 0 {
		t.Fatalf("latency accounting empty: mean=%v p99=%v", st.MeanLatency, st.P99Latency)
	}
	if st.FinalCwnd < 2 {
		t.Fatalf("cwnd collapsed to %v", st.FinalCwnd)
	}
}

func TestClosedLoopLiveStats(t *testing.T) {
	srv, err := ListenAndServeOpts("127.0.0.1:0", events.Gen4G, ServerOpts{ServiceTime: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var live LiveStats
	opts := fastOpts(102)
	opts.Live = &live
	done := make(chan error, 1)
	go func() {
		_, err := ReplayClosed(srv.Addr().String(), events.Gen4G, seqSource(400), opts)
		done <- err
	}()
	// While the replay runs, the atomics must show live transport state.
	sawInflight := false
	deadline := time.After(10 * time.Second)
	for !sawInflight {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			t.Fatalf("replay finished before live stats showed activity (acked=%d)", live.Acked.Load())
		case <-deadline:
			t.Fatal("timed out")
		case <-time.After(time.Millisecond):
			if live.Sent.Load() > 0 && live.CwndEvents.Load() >= 2 {
				sawInflight = true
			}
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if live.Acked.Load() != 400 {
		t.Fatalf("live acked=%d, want 400", live.Acked.Load())
	}
	if live.SRTTNanos.Load() <= 0 || live.RTONanos.Load() <= 0 {
		t.Fatalf("estimator never published: srtt=%d rto=%d", live.SRTTNanos.Load(), live.RTONanos.Load())
	}
}

// TestClosedLoopResumeProtocol pins the exactly-once resume contract at the
// wire level: a session that reconnects and retransmits already-applied
// sequences sees them acknowledged but counted as duplicates, never
// re-applied.
func TestClosedLoopResumeProtocol(t *testing.T) {
	srv, err := ListenAndServe("127.0.0.1:0", events.Gen4G)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	send := func(c *rawClosedConn, lo, hi uint64) {
		t.Helper()
		for seq := lo; seq <= hi; seq++ {
			c.sendSeq(t, seq)
		}
	}

	c := dialRawClosed(t, srv.Addr().String(), 555)
	if got := c.hello(t); got != 0 {
		t.Fatalf("fresh session resumed at %d", got)
	}
	send(c, 1, 5)
	if ack := c.waitAck(t, 5); ack != 5 {
		t.Fatalf("ack=%d, want 5", ack)
	}
	c.close()

	// Reconnect: the resume ACK must report 5; retransmitting 3..8 must
	// apply only 6..8.
	c = dialRawClosed(t, srv.Addr().String(), 555)
	if got := c.hello(t); got != 5 {
		t.Fatalf("resume ack=%d, want 5", got)
	}
	send(c, 3, 8)
	if ack := c.waitAck(t, 8); ack != 8 {
		t.Fatalf("ack=%d, want 8", ack)
	}
	c.close()

	st := srv.Snapshot()
	if st.Events != 8 {
		t.Fatalf("server applied %d events, want exactly 8", st.Events)
	}
	if st.Duplicates != 3 {
		t.Fatalf("duplicates=%d, want 3", st.Duplicates)
	}
}

// TestClosedLoopExactlyOnceUnderFaults is the full fault matrix: every
// fault class on each side of the connection, with the invariant that the
// server applies every event exactly once no matter how many
// reconnect/retransmit cycles the schedule forces.
func TestClosedLoopExactlyOnceUnderFaults(t *testing.T) {
	cases := []struct {
		name           string
		client, server faultnet.Config
	}{
		{name: "client-drop", client: faultnet.Config{Seed: 1, DropProb: 0.03}},
		{name: "client-reset", client: faultnet.Config{Seed: 2, ResetProb: 0.01}},
		{name: "client-partial", client: faultnet.Config{Seed: 3, PartialProb: 0.01}},
		{name: "client-stall", client: faultnet.Config{Seed: 4, StallProb: 0.05, StallDur: 5 * time.Millisecond}},
		{name: "server-drop", server: faultnet.Config{Seed: 5, DropProb: 0.05}},
		{name: "server-reset", server: faultnet.Config{Seed: 6, ResetProb: 0.02}},
		{name: "server-partial", server: faultnet.Config{Seed: 7, PartialProb: 0.02}},
		{name: "server-stall", server: faultnet.Config{Seed: 8, StallProb: 0.05, StallDur: 5 * time.Millisecond}},
		{name: "both-sides-mixed", client: faultnet.Config{Seed: 9, DropProb: 0.02, StallProb: 0.02, StallDur: 2 * time.Millisecond},
			server: faultnet.Config{Seed: 10, DropProb: 0.02, ResetProb: 0.005}},
	}
	for i, tc := range cases {
		tc := tc
		sess := uint64(1000 + i)
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			var sopts ServerOpts
			if tc.server.Seed != 0 {
				cfg := tc.server
				sopts.Fault = &cfg
			}
			srv, err := ListenAndServeOpts("127.0.0.1:0", events.Gen4G, sopts)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			opts := fastOpts(sess)
			opts.MaxReconnects = 50
			if tc.client.Seed != 0 {
				opts.Dial = faultnet.Dialer(tc.client)
			}
			const n = 300
			st, err := ReplayClosed(srv.Addr().String(), events.Gen4G, seqSource(n), opts)
			if err != nil {
				t.Fatal(err)
			}
			if st.Acked != n {
				t.Fatalf("acked=%d, want %d", st.Acked, n)
			}
			if st.Server.Events != n {
				t.Fatalf("server applied %d events, want exactly %d (loss or duplication)", st.Server.Events, n)
			}
		})
	}
}

// TestSLOSearchStateDeterministic drives the pure controller state machine
// against a synthetic capacity and pins both convergence and the exact rate
// trajectory (same verdicts → same probes).
func TestSLOSearchStateDeterministic(t *testing.T) {
	run := func() (rates []float64, st *sloSearchState) {
		const capacity = 1000.0
		st = newSLOSearchState(SearchOpts{
			SLOP99: 50 * time.Millisecond, InitialRate: 100,
			RampFactor: 2, Tolerance: 0.25, MaxRounds: 20, WindowEvents: 100, MinAchievedFrac: 0.85,
		}.withDefaults())
		for !st.done {
			rates = append(rates, st.rate)
			st.observe(st.rate <= capacity)
		}
		return rates, st
	}
	a, sa := run()
	b, _ := run()
	if len(a) != len(b) {
		t.Fatalf("trajectory lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trajectory diverged at round %d: %v vs %v", i, a[i], b[i])
		}
	}
	if !sa.converged {
		t.Fatalf("did not converge in %d rounds", sa.rounds)
	}
	if sa.lo < 800 || sa.lo > 1000 {
		t.Fatalf("converged MaxRate %v outside [800,1000] for capacity 1000", sa.lo)
	}
	// The bracket must satisfy the stopping rule.
	if sa.hi/sa.lo > 1.25+1e-9 {
		t.Fatalf("bracket [%v,%v] wider than tolerance", sa.lo, sa.hi)
	}
	// Ramp-down path: a capacity below the initial rate must be found too.
	st := newSLOSearchState(SearchOpts{SLOP99: time.Millisecond, InitialRate: 1000}.withDefaults())
	for !st.done {
		st.observe(st.rate <= 30)
	}
	if st.lo <= 0 || st.lo > 30 {
		t.Fatalf("ramp-down found %v, want within (0,30]", st.lo)
	}
}

// TestSLOSearchEndToEnd runs the controller against a rate-limited
// in-process server and checks it converges to a plausible capacity
// estimate. The assertion band is deliberately broad — scheduling noise
// moves the estimate, the machinery is what's under test.
func TestSLOSearchEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	// ServiceTime 500µs → per-connection capacity ≈ 2000 events/s.
	srv, err := ListenAndServeOpts("127.0.0.1:0", events.Gen4G, ServerOpts{ServiceTime: 500 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	res, err := SLOSearch(srv.Addr().String(), events.Gen4G, seqSource(40000), fastOpts(2001), SearchOpts{
		SLOP99:       80 * time.Millisecond,
		InitialRate:  250,
		WindowEvents: 150,
		Tolerance:    0.5,
		MaxRounds:    10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) < 2 {
		t.Fatalf("only %d probe rounds", len(res.Rounds))
	}
	if res.MaxRate <= 0 {
		t.Fatal("no sustainable rate found")
	}
	if res.MaxRate < 100 || res.MaxRate > 20000 {
		t.Fatalf("max rate %v implausible for a ~2000 ev/s server", res.MaxRate)
	}
	if res.Transport.Acked == 0 || res.Transport.Server.Events == 0 {
		t.Fatal("transport stats empty")
	}
	if int64(res.Transport.Server.Events) != res.Transport.Acked {
		t.Fatalf("server applied %d but driver acked %d", res.Transport.Server.Events, res.Transport.Acked)
	}
	if math.IsNaN(res.MaxRate) {
		t.Fatal("NaN rate")
	}
}
