package replaynet

// Closed-loop replay: the congestion-controlled counterpart of ReplayStream.
// Instead of pouring events onto the wire open-loop, the driver treats each
// event as a signaling transaction that the server acknowledges (cumulative
// ACK frames over sequenced SEVENT frames), estimates the transaction RTT
// (RFC-6298 sRTT/rttvar with exponential RTO), and bounds the in-flight
// transaction count with a CUBIC-style congestion window. A lost or stalled
// connection is survived by bounded-exponential-backoff reconnection that
// resumes the session exactly where the server left it — the server's
// resume ACK tells the driver which events were applied, so nothing is
// duplicated and nothing is lost.
//
// Concurrency contract: one driver goroutine owns the send loop; a reader
// goroutine per connection folds ACK arrivals into two atomics and a
// notification channel (never blocking, so a slow driver can never deadlock
// the ack stream against TCP backpressure). LiveStats mirrors the
// mcn.LiveStats idiom: every field is an atomic, written by the driver loop
// and readable from any goroutine while the replay runs.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"sync/atomic"
	"time"

	"cptgpt/internal/events"
	"cptgpt/internal/mcn"
	"cptgpt/internal/telemetry"
	"cptgpt/internal/tracez"
)

// LiveStats publishes a running closed-loop replay's transport state for
// concurrent readers: all fields are atomics, written by the driver loop
// and readable from any goroutine at any time (the cptserved daemon's
// cptserved_replay_* series read them at scrape time).
type LiveStats struct {
	// CwndEvents is the current congestion window in whole in-flight
	// transactions; Inflight the sent-but-unacknowledged count.
	CwndEvents atomic.Int64
	Inflight   atomic.Int64
	// SRTTNanos/RTTVarNanos/RTONanos are the RFC-6298 estimator state.
	SRTTNanos   atomic.Int64
	RTTVarNanos atomic.Int64
	RTONanos    atomic.Int64
	// Sent counts first transmissions, Retransmits re-sends after a loss
	// event, Acked server-applied transactions, Reconnects completed
	// reconnect-and-resume handshakes.
	Sent        atomic.Int64
	Acked       atomic.Int64
	Retransmits atomic.Int64
	Reconnects  atomic.Int64
	// AckedSeq is the highest sequence number the server has contiguously
	// applied — absolute across resumed incarnations of the same session
	// (it starts at ClosedOpts.ResumeFrom, not 0). This is the exact value
	// a durable checkpoint can record: every event with seq ≤ AckedSeq is
	// applied server-side, nothing beyond it is.
	AckedSeq atomic.Uint64
}

// ClosedOpts tunes a closed-loop replay run. The zero value is usable:
// no trace pacing (the window is the only throttle), default congestion
// parameters, net.Dial connectivity.
type ClosedOpts struct {
	// Speedup divides trace time exactly like ReplayOpts.Speedup; 0 sends
	// as fast as the congestion window allows.
	Speedup float64
	// Deadline bounds the total wall-clock replay duration; 0 means none.
	Deadline time.Duration
	// SessionID keys the server-side resume state. 0 derives a fresh ID
	// from the wall clock; pass an explicit ID for reproducible tests.
	SessionID uint64
	// ResumeFrom resumes a crashed incarnation of this session: it is the
	// highest sequence number the previous incarnation knew the server had
	// applied, and the source must deliver the event stream from sequence
	// ResumeFrom+1 on. At the handshake the server reports its actual
	// applied sequence A ≥ ResumeFrom; the first A−ResumeFrom source
	// events are already applied server-side and are skipped without
	// sending, so delivery stays exactly-once across the crash. If the
	// server reports A < ResumeFrom its session state is gone (server
	// restart) and the replay fails fast rather than double-applying.
	ResumeFrom uint64
	// InitialCwnd is the slow-start entry window (events); default 4.
	InitialCwnd float64
	// MaxCwnd caps the window; default 4096.
	MaxCwnd float64
	// MinRTO/MaxRTO clamp the retransmission timeout; defaults 100ms / 10s.
	MinRTO time.Duration
	MaxRTO time.Duration
	// InitialRTO seeds the timeout before the first RTT sample; default 1s.
	InitialRTO time.Duration
	// ReconnectBackoff is the first reconnect delay, doubled per
	// consecutive failure up to MaxReconnectBackoff; defaults 20ms / 2s.
	ReconnectBackoff    time.Duration
	MaxReconnectBackoff time.Duration
	// MaxReconnects bounds consecutive failed reconnect attempts before
	// the replay errors out; default 10.
	MaxReconnects int
	// FlushInterval bounds how long a written event may sit in the client's
	// write buffer; default 20ms. The buffer is also flushed whenever the
	// driver is about to wait.
	FlushInterval time.Duration
	// Dial overrides connection establishment (the fault-injection seam:
	// pass faultnet.Dialer(cfg)); nil means plain net.Dial("tcp", addr).
	Dial func(addr string) (net.Conn, error)
	// Live, when non-nil, receives the run's transport state as atomics.
	Live *LiveStats
	// RTTSink, when non-nil, mirrors every sampled send→ACK latency
	// (seconds) into a lock-free telemetry histogram — the native
	// Prometheus distribution behind a daemon's
	// cptserved_replay_rtt_seconds series. Never changes the replay.
	RTTSink *telemetry.Histogram
}

// withDefaults resolves zero fields to their defaults.
func (o ClosedOpts) withDefaults() ClosedOpts {
	if o.SessionID == 0 {
		o.SessionID = uint64(time.Now().UnixNano())*2654435761 + 1
	}
	if o.InitialCwnd <= 0 {
		o.InitialCwnd = 4
	}
	if o.MaxCwnd <= 0 {
		o.MaxCwnd = 4096
	}
	if o.MinRTO <= 0 {
		o.MinRTO = 100 * time.Millisecond
	}
	if o.MaxRTO <= 0 {
		o.MaxRTO = 10 * time.Second
	}
	if o.InitialRTO <= 0 {
		o.InitialRTO = time.Second
	}
	if o.ReconnectBackoff <= 0 {
		o.ReconnectBackoff = 20 * time.Millisecond
	}
	if o.MaxReconnectBackoff <= 0 {
		o.MaxReconnectBackoff = 2 * time.Second
	}
	if o.MaxReconnects <= 0 {
		o.MaxReconnects = 10
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = 20 * time.Millisecond
	}
	if o.Dial == nil {
		o.Dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	return o
}

// ClosedStats summarizes a closed-loop replay run.
type ClosedStats struct {
	// Server is the server's final report.
	Server Stats
	// Sent counts first transmissions; Acked server-applied transactions;
	// Retransmits re-sent events; Reconnects completed resume handshakes.
	Sent, Acked, Retransmits, Reconnects int64
	// MeanLatency and the percentiles summarize per-transaction
	// send→acknowledge latency (log-bucket histogram percentiles).
	MeanLatency, P95Latency, P99Latency time.Duration
	// AchievedRate is acked transactions per wall-clock second.
	AchievedRate float64
	// Wall is the total replay duration.
	Wall time.Duration
	// FinalCwnd and SRTT are the congestion state at the end of the run.
	FinalCwnd float64
	SRTT      time.Duration
}

// CUBIC constants (RFC 8312 flavor): cubicC scales window growth, cubicBeta
// is the multiplicative-decrease factor applied on a loss event.
const (
	cubicC    = 0.4
	cubicBeta = 0.7
	minCwnd   = 2.0
)

// pendingEv is one sent-but-unacknowledged transaction.
type pendingEv struct {
	seq     uint64
	ue      uint32
	tMicros int64
	ev      byte
	sentAt  time.Time
	retx    bool
}

// closedHooks are the controller seams of the core loop: due paces sends
// (zero time = immediately), onSend observes each first transmission, and
// onAck observes acked batches — returning false stops pulling the source
// (in-flight events still drain).
type closedHooks struct {
	due    func(ev ReplayEvent) time.Time
	onSend func()
	onAck  func(n int, now time.Time) bool
}

// closedSession is the driver state machine.
type closedSession struct {
	addr string
	gen  events.Generation
	o    ClosedOpts

	conn     net.Conn
	bw       *bufio.Writer
	notify   chan struct{}
	readErr  chan error
	reportCh chan Stats

	lastAck   atomic.Uint64
	lastAckAt atomic.Int64 // wall nanos of the newest ACK arrival

	pending   []pendingEv
	ackedSeq  uint64 // highest sequence processed out of lastAck
	nextSeq   uint64
	ueIdx     map[uint64]uint32
	flushedAt time.Time

	// Congestion state.
	cwnd, wMax, cubicK float64
	epoch              time.Time
	slowStart          bool

	// RFC-6298 estimator state.
	srtt, rttvar, rto time.Duration

	// Latency accounting: hist is the whole-run histogram; winHist, when
	// non-nil, additionally receives samples for the controller's current
	// probe window.
	hist    *mcn.LatencyHist
	winHist *mcn.LatencyHist

	sent, retx, acked, reconnects int64
	start                         time.Time
}

// publishLive refreshes the LiveStats atomics.
func (s *closedSession) publishLive() {
	l := s.o.Live
	if l == nil {
		return
	}
	l.CwndEvents.Store(int64(s.cwnd))
	l.Inflight.Store(int64(len(s.pending)))
	l.SRTTNanos.Store(int64(s.srtt))
	l.RTTVarNanos.Store(int64(s.rttvar))
	l.RTONanos.Store(int64(s.rto))
	l.Sent.Store(s.sent)
	l.Acked.Store(s.acked)
	l.Retransmits.Store(s.retx)
	l.Reconnects.Store(s.reconnects)
	l.AckedSeq.Store(s.ackedSeq)
}

// startReader spawns the per-connection ACK/REPORT reader. It never blocks
// on the session: ACK state folds into atomics with a non-blocking notify,
// so TCP backpressure on the event stream can never deadlock the ack path.
func (s *closedSession) startReader(br *bufio.Reader, notify chan struct{}, errCh chan error, reportCh chan Stats) {
	go func() {
		for {
			t, payload, err := readFrame(br)
			if err != nil {
				select {
				case errCh <- err:
				default:
				}
				return
			}
			switch t {
			case frameAck:
				seq, err := decodeAck(payload)
				if err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
				for {
					cur := s.lastAck.Load()
					if seq <= cur {
						break
					}
					if s.lastAck.CompareAndSwap(cur, seq) {
						s.lastAckAt.Store(time.Now().UnixNano())
						break
					}
				}
				select {
				case notify <- struct{}{}:
				default:
				}
			case frameReport:
				var st Stats
				if err := json.Unmarshal(payload, &st); err == nil {
					select {
					case reportCh <- st:
					default:
					}
				}
			default:
				select {
				case errCh <- fmt.Errorf("replaynet: unexpected frame %q from server", byte(t)):
				default:
				}
				return
			}
		}
	}()
}

// connect dials, performs the CHELLO resume handshake synchronously and
// spawns the reader. It returns the server's applied sequence number.
func (s *closedSession) connect() (uint64, error) {
	conn, err := s.o.Dial(s.addr)
	if err != nil {
		return 0, err
	}
	bw := bufio.NewWriter(conn)
	if err := writeFrame(bw, frameClosedHello, closedHelloPayload(byte(s.gen), s.o.SessionID)); err != nil {
		conn.Close()
		return 0, err
	}
	if err := bw.Flush(); err != nil {
		conn.Close()
		return 0, err
	}
	// The resume ACK is read inline (bounded by a deadline) so the caller
	// knows exactly where the session stands before sending anything.
	_ = conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	br := bufio.NewReader(conn)
	t, payload, err := readFrame(br)
	if err != nil {
		conn.Close()
		return 0, fmt.Errorf("replaynet: resume handshake: %w", err)
	}
	if t != frameAck {
		conn.Close()
		return 0, fmt.Errorf("replaynet: resume handshake: expected ACK, got %q", byte(t))
	}
	applied, err := decodeAck(payload)
	if err != nil {
		conn.Close()
		return 0, err
	}
	_ = conn.SetReadDeadline(time.Time{})

	s.conn = conn
	s.bw = bufio.NewWriter(conn)
	s.notify = make(chan struct{}, 1)
	s.readErr = make(chan error, 1)
	s.reportCh = make(chan Stats, 1)
	// The handshake's buffered reader is handed to the reader goroutine so
	// any frames that arrived behind the resume ACK are not lost.
	s.startReader(br, s.notify, s.readErr, s.reportCh)
	return applied, nil
}

// reconnect survives a loss event: close, back off exponentially, redial,
// resume the session from the server's applied sequence and retransmit the
// rest of the in-flight window.
func (s *closedSession) reconnect() error {
	sp := tracez.Begin(tracez.StageReplayReconnect, "")
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
	backoff := s.o.ReconnectBackoff
	for attempt := 0; ; attempt++ {
		if attempt >= s.o.MaxReconnects {
			return fmt.Errorf("replaynet: gave up after %d reconnect attempts", attempt)
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > s.o.MaxReconnectBackoff {
			backoff = s.o.MaxReconnectBackoff
		}
		applied, err := s.connect()
		if err != nil {
			continue
		}
		now := time.Now()
		// Events the server applied before the disconnect are acked by the
		// resume handshake; their ack time is unknown, so they count as
		// acked without contributing latency samples.
		s.popAcked(applied, now, false)
		// Everything else in flight is retransmitted in order.
		var buf [21]byte
		for i := range s.pending {
			p := &s.pending[i]
			p.retx = true
			p.sentAt = now
			if err := writeFrame(s.bw, frameSeqEvent, seqEventPayload(buf[:], p.seq, p.ue, p.tMicros, p.ev)); err != nil {
				break
			}
		}
		if err := s.flush(); err != nil {
			continue
		}
		s.retx += int64(len(s.pending))
		s.reconnects++
		s.epoch = now
		s.publishLive()
		sp.End(int64(len(s.pending)), "")
		return nil
	}
}

// onLoss applies the CUBIC multiplicative decrease for a loss event (RTO
// expiry or connection failure).
func (s *closedSession) onLoss() {
	s.slowStart = false
	s.wMax = s.cwnd
	s.cwnd *= cubicBeta
	if s.cwnd < minCwnd {
		s.cwnd = minCwnd
	}
	s.cubicK = math.Cbrt(s.wMax * (1 - cubicBeta) / cubicC)
	s.epoch = time.Time{} // restarted when transmission resumes
}

// onAckCwnd grows the window for n newly acked transactions: slow start
// until the first loss, then the CUBIC concave/convex profile around wMax.
func (s *closedSession) onAckCwnd(n int, now time.Time) {
	if s.slowStart {
		s.cwnd += float64(n)
	} else {
		if s.epoch.IsZero() {
			s.epoch = now
			if s.wMax < s.cwnd {
				s.wMax = s.cwnd
				s.cubicK = 0
			}
		}
		t := now.Sub(s.epoch).Seconds()
		for i := 0; i < n; i++ {
			target := cubicC*math.Pow(t-s.cubicK, 3) + s.wMax
			if target > s.cwnd {
				s.cwnd += (target - s.cwnd) / s.cwnd
			} else {
				// Above the cubic target: probe slowly.
				s.cwnd += 0.01 / s.cwnd
			}
		}
	}
	if s.cwnd > s.o.MaxCwnd {
		s.cwnd = s.o.MaxCwnd
	}
	if s.cwnd < minCwnd {
		s.cwnd = minCwnd
	}
}

// updateRTT folds one RTT sample into the RFC-6298 estimator.
func (s *closedSession) updateRTT(r time.Duration) {
	if r <= 0 {
		r = time.Microsecond
	}
	if s.srtt == 0 {
		s.srtt = r
		s.rttvar = r / 2
	} else {
		d := s.srtt - r
		if d < 0 {
			d = -d
		}
		s.rttvar = (3*s.rttvar + d) / 4
		s.srtt = (7*s.srtt + r) / 8
	}
	s.rto = s.srtt + 4*s.rttvar
	if s.rto < s.o.MinRTO {
		s.rto = s.o.MinRTO
	}
	if s.rto > s.o.MaxRTO {
		s.rto = s.o.MaxRTO
	}
}

// popAcked retires every pending transaction with seq ≤ upTo. With sample
// set, each contributes a latency observation and the newest
// non-retransmitted one an RTT sample (Karn's algorithm). Returns the
// retired count.
func (s *closedSession) popAcked(upTo uint64, at time.Time, sample bool) int {
	n := 0
	rttSample := time.Duration(-1)
	for len(s.pending) > 0 && s.pending[0].seq <= upTo {
		p := s.pending[0]
		s.pending = s.pending[1:]
		n++
		s.acked++
		if sample {
			lat := at.Sub(p.sentAt)
			if lat < 0 {
				lat = 0
			}
			s.hist.Add(lat.Seconds())
			if s.winHist != nil {
				s.winHist.Add(lat.Seconds())
			}
			if s.o.RTTSink != nil {
				s.o.RTTSink.Observe(lat.Seconds())
			}
			if !p.retx {
				rttSample = lat
			}
		}
	}
	if upTo > s.ackedSeq {
		s.ackedSeq = upTo
	}
	if rttSample >= 0 {
		s.updateRTT(rttSample)
		// One span per ACK fold: the duration is the fold's RTT sample
		// (Karn-filtered), N the transactions it retired.
		tracez.Record(tracez.StageReplayAck, "", at.Add(-rttSample), rttSample, int64(n), "")
	}
	if n > 0 && sample {
		s.onAckCwnd(n, at)
	}
	s.publishLive()
	return n
}

// flush drains the write buffer.
func (s *closedSession) flush() error {
	s.flushedAt = time.Now()
	return s.bw.Flush()
}

// send transmits one event as the next sequenced transaction.
func (s *closedSession) send(ev ReplayEvent, now time.Time) error {
	idx, seen := s.ueIdx[ev.UE]
	if !seen {
		idx = uint32(len(s.ueIdx))
		s.ueIdx[ev.UE] = idx
	}
	s.nextSeq++
	p := pendingEv{seq: s.nextSeq, ue: idx, tMicros: int64(ev.Time * 1e6), ev: byte(ev.Type), sentAt: now}
	s.pending = append(s.pending, p)
	s.sent++
	var buf [21]byte
	if err := writeFrame(s.bw, frameSeqEvent, seqEventPayload(buf[:], p.seq, p.ue, p.tMicros, p.ev)); err != nil {
		return err
	}
	if time.Since(s.flushedAt) >= s.o.FlushInterval {
		return s.flush()
	}
	return nil
}

// runClosed is the core closed-loop driver loop shared by ReplayClosed and
// SLOSearch. winHist, when non-nil, additionally receives every acked
// transaction's latency (the controller's probe-window accounting).
func runClosed(addr string, gen events.Generation, src EventSource, o ClosedOpts, hooks closedHooks, winHist *mcn.LatencyHist) (ClosedStats, error) {
	o = o.withDefaults()
	s := &closedSession{
		addr: addr, gen: gen, o: o,
		ueIdx:     make(map[uint64]uint32),
		cwnd:      o.InitialCwnd,
		slowStart: true,
		rto:       o.InitialRTO,
		hist:      mcn.NewLatencyHist(),
		winHist:   winHist,
		start:     time.Now(),
		// A resumed incarnation continues the session's absolute sequence
		// space: the next send is ResumeFrom+1 (0 for a fresh session).
		nextSeq:  o.ResumeFrom,
		ackedSeq: o.ResumeFrom,
	}
	s.lastAck.Store(o.ResumeFrom)
	applied, err := s.connect()
	if err != nil {
		return ClosedStats{}, fmt.Errorf("replaynet: dial %s: %w", addr, err)
	}
	defer func() {
		if s.conn != nil {
			s.conn.Close()
		}
	}()
	if o.ResumeFrom > 0 {
		if applied < o.ResumeFrom {
			return ClosedStats{}, fmt.Errorf(
				"replaynet: session %d resume: server applied %d < checkpointed %d (server session state lost); restart the run instead",
				o.SessionID, applied, o.ResumeFrom)
		}
		// Events in (ResumeFrom, applied] were applied server-side but
		// acked after the previous incarnation's last checkpoint: consume
		// them from the source without sending (no pacing, no stats), so
		// the wire resumes exactly at applied+1.
		for skip := applied - o.ResumeFrom; skip > 0; skip-- {
			ev, ok, err := src.NextReplayEvent()
			if err != nil {
				return ClosedStats{}, fmt.Errorf("replaynet: event source during resume skip: %w", err)
			}
			if !ok {
				break
			}
			if _, seen := s.ueIdx[ev.UE]; !seen {
				s.ueIdx[ev.UE] = uint32(len(s.ueIdx))
			}
			s.nextSeq++
		}
		s.ackedSeq = s.nextSeq
		s.lastAck.Store(s.nextSeq)
	}
	s.publishLive()

	var (
		peek     ReplayEvent
		havePeek bool
		srcDone  bool
	)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()

	for {
		// Retire whatever the reader has acknowledged.
		if upTo := s.lastAck.Load(); upTo > s.ackedSeq {
			at := time.Unix(0, s.lastAckAt.Load())
			if n := s.popAcked(upTo, at, true); n > 0 && hooks.onAck != nil {
				if !hooks.onAck(n, at) {
					srcDone = true // controller says stop: drain and finish
					havePeek = false
				}
			}
		}

		// Fill the window.
		paceWait := time.Duration(-1)
		for !srcDone && len(s.pending) < int(s.cwnd) {
			if !havePeek {
				ev, ok, err := src.NextReplayEvent()
				if err != nil {
					return ClosedStats{}, fmt.Errorf("replaynet: event source: %w", err)
				}
				if !ok {
					srcDone = true
					break
				}
				peek, havePeek = ev, true
			}
			if o.Deadline > 0 && time.Since(s.start) > o.Deadline {
				srcDone = true
				havePeek = false
				break
			}
			if hooks.due != nil {
				if d := hooks.due(peek); !d.IsZero() {
					if w := time.Until(d); w > 0 {
						paceWait = w
						break
					}
				}
			}
			if err := s.send(peek, time.Now()); err != nil {
				s.onLoss()
				if rerr := s.reconnect(); rerr != nil {
					return ClosedStats{}, rerr
				}
			} else if hooks.onSend != nil {
				hooks.onSend()
			}
			havePeek = false
		}
		s.publishLive()

		if srcDone && len(s.pending) == 0 {
			break
		}

		// About to wait: everything buffered goes onto the wire first (the
		// flush contract that makes "paced" mean paced).
		if err := s.flush(); err != nil {
			s.onLoss()
			if rerr := s.reconnect(); rerr != nil {
				return ClosedStats{}, rerr
			}
			continue
		}

		// Wait for an ack, a connection failure, the RTO or the pacer.
		wait := time.Hour
		rtoWait := false
		if len(s.pending) > 0 {
			if w := time.Until(s.pending[0].sentAt.Add(s.rto)); w < wait {
				wait, rtoWait = w, true
			}
		}
		if paceWait >= 0 && paceWait < wait {
			wait, rtoWait = paceWait, false
		}
		if wait < 0 {
			wait = 0
		}
		timer.Reset(wait)
		select {
		case <-s.notify:
			if !timer.Stop() {
				<-timer.C
			}
		case err := <-s.readErr:
			if !timer.Stop() {
				<-timer.C
			}
			_ = err
			s.onLoss()
			if rerr := s.reconnect(); rerr != nil {
				return ClosedStats{}, rerr
			}
		case <-timer.C:
			if rtoWait && len(s.pending) > 0 && time.Since(s.pending[0].sentAt) >= s.rto {
				// Per-event timeout: the oldest in-flight transaction blew
				// its RTO — a loss event. Back off the timeout (Karn) and
				// resume through a fresh connection.
				s.rto *= 2
				if s.rto > o.MaxRTO {
					s.rto = o.MaxRTO
				}
				s.onLoss()
				if rerr := s.reconnect(); rerr != nil {
					return ClosedStats{}, rerr
				}
			}
		}
	}

	// Final stats handshake (retried across a reconnect if the connection
	// dies under it).
	server, err := s.finalStats()
	if err != nil {
		return ClosedStats{}, err
	}
	wall := time.Since(s.start)
	st := ClosedStats{
		Server:      server,
		Sent:        s.sent,
		Acked:       s.acked,
		Retransmits: s.retx,
		Reconnects:  s.reconnects,
		MeanLatency: time.Duration(s.hist.Mean() * 1e9),
		P95Latency:  time.Duration(s.hist.Quantile(0.95) * 1e9),
		P99Latency:  time.Duration(s.hist.Quantile(0.99) * 1e9),
		Wall:        wall,
		FinalCwnd:   s.cwnd,
		SRTT:        s.srtt,
	}
	if w := wall.Seconds(); w > 0 {
		st.AchievedRate = float64(s.acked) / w
	}
	return st, nil
}

// finalStats requests the server's report, reconnecting once if needed.
func (s *closedSession) finalStats() (Stats, error) {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if s.conn == nil {
			if err := s.reconnect(); err != nil {
				return Stats{}, err
			}
		}
		err := func() error {
			if err := writeFrame(s.bw, frameStats, nil); err != nil {
				return err
			}
			return s.flush()
		}()
		if err == nil {
			select {
			case st := <-s.reportCh:
				if werr := writeFrame(s.bw, frameBye, nil); werr == nil {
					_ = s.flush()
				}
				return st, nil
			case err = <-s.readErr:
			case <-time.After(3 * time.Second):
				err = errors.New("replaynet: timed out waiting for final report")
			}
		}
		lastErr = err
		s.conn.Close()
		s.conn = nil
	}
	return Stats{}, fmt.Errorf("replaynet: final stats: %w", lastErr)
}

// ReplayClosed connects to a replaynet server and replays a time-ordered
// event sequence as acknowledged, congestion-controlled signaling
// transactions — the closed-loop counterpart of ReplayStream. Events are
// paced by opts.Speedup (0 = window-limited only); delivery is exactly-once
// across connection failures.
func ReplayClosed(addr string, gen events.Generation, src EventSource, opts ClosedOpts) (ClosedStats, error) {
	var start time.Time
	var t0 float64
	first := true
	hooks := closedHooks{}
	if opts.Speedup > 0 {
		speed := opts.Speedup
		hooks.due = func(ev ReplayEvent) time.Time {
			if first {
				first = false
				start = time.Now()
				t0 = ev.Time
			}
			return start.Add(time.Duration((ev.Time - t0) / speed * float64(time.Second)))
		}
	}
	return runClosed(addr, gen, src, opts, hooks, nil)
}
