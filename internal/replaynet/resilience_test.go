package replaynet

import (
	"bufio"
	"encoding/binary"
	"net"
	"testing"
	"time"

	"cptgpt/internal/events"
	"cptgpt/internal/faultnet"
)

// rawClosedConn is a hand-driven closed-loop client for protocol-level
// assertions.
type rawClosedConn struct {
	conn    net.Conn
	br      *bufio.Reader
	session uint64
}

func dialRawClosed(t *testing.T, addr string, session uint64) *rawClosedConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawClosedConn{conn: conn, br: bufio.NewReader(conn), session: session}
}

// hello performs the CHELLO handshake and returns the resume sequence.
func (c *rawClosedConn) hello(t *testing.T) uint64 {
	t.Helper()
	if err := writeFrame(c.conn, frameClosedHello, closedHelloPayload(byte(events.Gen4G), c.session)); err != nil {
		t.Fatal(err)
	}
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	ft, payload, err := readFrame(c.br)
	if err != nil {
		t.Fatal(err)
	}
	if ft != frameAck {
		t.Fatalf("handshake answered with %q, want ACK", byte(ft))
	}
	seq, err := decodeAck(payload)
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

// sendSeq transmits one sequenced attach event.
func (c *rawClosedConn) sendSeq(t *testing.T, seq uint64) {
	t.Helper()
	var buf [21]byte
	if err := writeFrame(c.conn, frameSeqEvent, seqEventPayload(buf[:], seq, uint32(seq%8), int64(seq), byte(events.Attach))); err != nil {
		t.Fatal(err)
	}
}

// waitAck reads ACK frames until the cumulative sequence reaches at least
// want, returning the last value seen.
func (c *rawClosedConn) waitAck(t *testing.T, want uint64) uint64 {
	t.Helper()
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var last uint64
	for last < want {
		ft, payload, err := readFrame(c.br)
		if err != nil {
			t.Fatalf("waiting for ack %d (have %d): %v", want, last, err)
		}
		if ft != frameAck {
			t.Fatalf("got frame %q while waiting for ACK", byte(ft))
		}
		seq, err := decodeAck(payload)
		if err != nil {
			t.Fatal(err)
		}
		last = seq
	}
	return last
}

func (c *rawClosedConn) close() { c.conn.Close() }

// mustServe starts a plain server for resilience tests.
func mustServe(t *testing.T, opts ServerOpts) *Server {
	t.Helper()
	srv, err := ListenAndServeOpts("127.0.0.1:0", events.Gen4G, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// sanityReplay checks the server still serves a well-formed driver.
func sanityReplay(t *testing.T, srv *Server, n int) {
	t.Helper()
	before := srv.Snapshot().Events
	st, err := ReplayClosed(srv.Addr().String(), events.Gen4G, seqSource(n), fastOpts(uint64(9000+n)))
	if err != nil {
		t.Fatalf("server no longer serves clean drivers: %v", err)
	}
	if got := st.Server.Events - before; got != n {
		t.Fatalf("sanity replay applied %d, want %d", got, n)
	}
}

// TestServerSurvivesMalformedFrameType pins that an unknown frame type
// drops only the offending connection.
func TestServerSurvivesMalformedFrameType(t *testing.T) {
	srv := mustServe(t, ServerOpts{})
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, frameType('Z'), []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	// The server must close this connection...
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := readFrame(bufio.NewReader(conn)); err == nil {
		t.Fatal("server kept a connection alive after a malformed frame")
	}
	// ...and keep serving everyone else.
	sanityReplay(t, srv, 50)
}

// TestServerSurvivesOversizedFrame pins the maxFrame guard: a length field
// beyond the limit must not allocate, must drop the connection, and must
// not take the server down.
func TestServerSurvivesOversizedFrame(t *testing.T) {
	srv := mustServe(t, ServerOpts{})
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hdr [5]byte
	hdr[0] = byte(frameEvent)
	binary.BigEndian.PutUint32(hdr[1:], maxFrame+1)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := readFrame(bufio.NewReader(conn)); err == nil {
		t.Fatal("server kept a connection alive after an oversized frame")
	}
	sanityReplay(t, srv, 50)
}

// TestServerSurvivesMidStreamDisconnect kills a connection halfway through
// a sequenced stream and checks the session state survives for a resume.
func TestServerSurvivesMidStreamDisconnect(t *testing.T) {
	srv := mustServe(t, ServerOpts{})
	c := dialRawClosed(t, srv.Addr().String(), 777)
	if got := c.hello(t); got != 0 {
		t.Fatalf("fresh session at %d", got)
	}
	for seq := uint64(1); seq <= 20; seq++ {
		c.sendSeq(t, seq)
	}
	c.waitAck(t, 20)
	c.close() // abrupt: no BYE

	// The session resumes where it stood.
	c2 := dialRawClosed(t, srv.Addr().String(), 777)
	if got := c2.hello(t); got != 20 {
		t.Fatalf("resume at %d, want 20", got)
	}
	sanityReplay(t, srv, 50)
}

// TestServerSlowReaderBackpressure drives an open-loop burst into a
// rate-limited server through a stalling link: the client must simply block
// on TCP backpressure and complete with every event accounted for.
func TestServerSlowReaderBackpressure(t *testing.T) {
	srv := mustServe(t, ServerOpts{
		ServiceTime: 200 * time.Microsecond,
		Fault:       &faultnet.Config{Seed: 21, StallProb: 0.05, StallDur: 2 * time.Millisecond},
	})
	const n = 2000
	st, err := ReplayStream(srv.Addr().String(), events.Gen4G, seqSource(n), ReplayOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Events != n {
		t.Fatalf("server saw %d events, want %d", st.Events, n)
	}
}

// TestOpenLoopWireBytesUnchanged pins the acceptance criterion that the
// open-loop path is byte-identical when the closed loop is off: the exact
// byte stream ReplayStream produces for a fixed source must match the
// pre-PR framing (HELLO, EVENTs, STATS, BYE — no closed-loop frames).
func TestOpenLoopWireBytesUnchanged(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	gotCh := make(chan []byte, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		var raw []byte
		for {
			ft, payload, err := readFrame(br)
			if err != nil {
				return
			}
			// Re-encode exactly what arrived to capture the byte stream.
			var hdr [5]byte
			hdr[0] = byte(ft)
			binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
			raw = append(raw, hdr[:]...)
			raw = append(raw, payload...)
			switch ft {
			case frameStats:
				writeFrame(conn, frameReport, []byte(`{"events":0,"by_type":{}}`))
			case frameBye:
				gotCh <- raw
				return
			}
		}
	}()

	const n = 10
	if _, err := ReplayStream(ln.Addr().String(), events.Gen4G, seqSource(n), ReplayOpts{}); err != nil {
		t.Fatal(err)
	}
	var got []byte
	select {
	case got = <-gotCh:
	case <-time.After(5 * time.Second):
		t.Fatal("timed out capturing wire bytes")
	}

	// The expected stream, assembled with the frozen open-loop framing.
	var want []byte
	appendFrame := func(ft frameType, payload []byte) {
		var hdr [5]byte
		hdr[0] = byte(ft)
		binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
		want = append(want, hdr[:]...)
		want = append(want, payload...)
	}
	appendFrame(frameHello, []byte{byte(events.Gen4G)})
	src := seqSource(n)
	ueIdx := map[uint64]uint32{}
	for {
		ev, ok, _ := src.NextReplayEvent()
		if !ok {
			break
		}
		idx, seen := ueIdx[ev.UE]
		if !seen {
			idx = uint32(len(ueIdx))
			ueIdx[ev.UE] = idx
		}
		appendFrame(frameEvent, eventPayload(idx, int64(ev.Time*1e6), byte(ev.Type)))
	}
	appendFrame(frameStats, nil)
	appendFrame(frameBye, nil)

	if string(got) != string(want) {
		t.Fatalf("open-loop wire bytes changed:\n got %x\nwant %x", got, want)
	}
}
