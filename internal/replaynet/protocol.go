// Package replaynet replays control-plane traffic over TCP: a driver client
// paces a dataset's events onto the wire and an MCN-frontend server
// consumes them, tracking per-UE state and load. It gives the repository a
// real networked downstream consumer (the paper's motivating use case of
// driving MCN implementations with synthesized traffic) built only on the
// standard library's net package.
//
// Wire format (all integers big-endian):
//
//	frame   := type(1) length(4) payload(length)
//	HELLO   := type 'H', payload = generation byte
//	EVENT   := type 'E', payload = ueIdx(4) timeMicros(8) eventType(1)
//	STATS   := type 'S', payload empty (request) — server answers with a
//	           REPORT frame
//	REPORT  := type 'R', payload = JSON-encoded Stats
//	BYE     := type 'B', payload empty
package replaynet

import (
	"encoding/binary"
	"fmt"
	"io"
)

// frameType tags a wire frame.
type frameType byte

const (
	frameHello  frameType = 'H'
	frameEvent  frameType = 'E'
	frameStats  frameType = 'S'
	frameReport frameType = 'R'
	frameBye    frameType = 'B'
)

// maxFrame bounds payload sizes to keep a malformed peer from forcing huge
// allocations.
const maxFrame = 1 << 20

// writeFrame emits one frame.
func writeFrame(w io.Writer, t frameType, payload []byte) error {
	var hdr [5]byte
	hdr[0] = byte(t)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("replaynet: writing frame header: %w", err)
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return fmt.Errorf("replaynet: writing frame payload: %w", err)
		}
	}
	return nil
}

// readFrame reads one frame.
func readFrame(r io.Reader) (frameType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err // propagate io.EOF unchanged for clean shutdown
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("replaynet: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("replaynet: reading frame payload: %w", err)
	}
	return frameType(hdr[0]), payload, nil
}

// eventPayload encodes an EVENT frame payload.
func eventPayload(ueIdx uint32, timeMicros int64, ev byte) []byte {
	buf := make([]byte, 13)
	binary.BigEndian.PutUint32(buf[0:4], ueIdx)
	binary.BigEndian.PutUint64(buf[4:12], uint64(timeMicros))
	buf[12] = ev
	return buf
}

// decodeEvent decodes an EVENT frame payload.
func decodeEvent(payload []byte) (ueIdx uint32, timeMicros int64, ev byte, err error) {
	if len(payload) != 13 {
		return 0, 0, 0, fmt.Errorf("replaynet: EVENT payload is %d bytes, want 13", len(payload))
	}
	return binary.BigEndian.Uint32(payload[0:4]),
		int64(binary.BigEndian.Uint64(payload[4:12])),
		payload[12], nil
}
