// Package replaynet replays control-plane traffic over TCP: a driver client
// paces a dataset's events onto the wire and an MCN-frontend server
// consumes them, tracking per-UE state and load. It gives the repository a
// real networked downstream consumer (the paper's motivating use case of
// driving MCN implementations with synthesized traffic) built only on the
// standard library's net package.
//
// Wire format (all integers big-endian):
//
//	frame   := type(1) length(4) payload(length)
//	HELLO   := type 'H', payload = generation byte
//	EVENT   := type 'E', payload = ueIdx(4) timeMicros(8) eventType(1)
//	STATS   := type 'S', payload empty (request) — server answers with a
//	           REPORT frame
//	REPORT  := type 'R', payload = JSON-encoded Stats
//	BYE     := type 'B', payload empty
//
// The closed-loop extension (PR 7) adds acknowledged, sequenced delivery on
// top — the open-loop frames above are untouched and the open-loop wire
// byte stream is byte-identical to before:
//
//	CHELLO  := type 'C', payload = generation(1) sessionID(8) — closed-loop
//	           hello; the server creates or resumes the session and answers
//	           with an ACK frame carrying the session's applied sequence
//	           number, from which the client resumes without duplication
//	SEVENT  := type 'Q', payload = seq(8) ueIdx(4) timeMicros(8) eventType(1)
//	           — a sequenced event; seq starts at 1 and increases by 1
//	ACK     := type 'A', payload = appliedSeq(8) — cumulative: every event
//	           with seq ≤ appliedSeq has been applied exactly once
package replaynet

import (
	"encoding/binary"
	"fmt"
	"io"
)

// frameType tags a wire frame.
type frameType byte

const (
	frameHello       frameType = 'H'
	frameEvent       frameType = 'E'
	frameStats       frameType = 'S'
	frameReport      frameType = 'R'
	frameBye         frameType = 'B'
	frameClosedHello frameType = 'C'
	frameSeqEvent    frameType = 'Q'
	frameAck         frameType = 'A'
)

// maxFrame bounds payload sizes to keep a malformed peer from forcing huge
// allocations.
const maxFrame = 1 << 20

// writeFrame emits one frame.
func writeFrame(w io.Writer, t frameType, payload []byte) error {
	var hdr [5]byte
	hdr[0] = byte(t)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("replaynet: writing frame header: %w", err)
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return fmt.Errorf("replaynet: writing frame payload: %w", err)
		}
	}
	return nil
}

// readFrame reads one frame.
func readFrame(r io.Reader) (frameType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err // propagate io.EOF unchanged for clean shutdown
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("replaynet: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("replaynet: reading frame payload: %w", err)
	}
	return frameType(hdr[0]), payload, nil
}

// eventPayload encodes an EVENT frame payload.
func eventPayload(ueIdx uint32, timeMicros int64, ev byte) []byte {
	buf := make([]byte, 13)
	binary.BigEndian.PutUint32(buf[0:4], ueIdx)
	binary.BigEndian.PutUint64(buf[4:12], uint64(timeMicros))
	buf[12] = ev
	return buf
}

// decodeEvent decodes an EVENT frame payload.
func decodeEvent(payload []byte) (ueIdx uint32, timeMicros int64, ev byte, err error) {
	if len(payload) != 13 {
		return 0, 0, 0, fmt.Errorf("replaynet: EVENT payload is %d bytes, want 13", len(payload))
	}
	return binary.BigEndian.Uint32(payload[0:4]),
		int64(binary.BigEndian.Uint64(payload[4:12])),
		payload[12], nil
}

// seqEventPayload encodes a SEVENT frame payload into buf (≥ 21 bytes).
func seqEventPayload(buf []byte, seq uint64, ueIdx uint32, timeMicros int64, ev byte) []byte {
	binary.BigEndian.PutUint64(buf[0:8], seq)
	binary.BigEndian.PutUint32(buf[8:12], ueIdx)
	binary.BigEndian.PutUint64(buf[12:20], uint64(timeMicros))
	buf[20] = ev
	return buf[:21]
}

// decodeSeqEvent decodes a SEVENT frame payload.
func decodeSeqEvent(payload []byte) (seq uint64, ueIdx uint32, timeMicros int64, ev byte, err error) {
	if len(payload) != 21 {
		return 0, 0, 0, 0, fmt.Errorf("replaynet: SEVENT payload is %d bytes, want 21", len(payload))
	}
	return binary.BigEndian.Uint64(payload[0:8]),
		binary.BigEndian.Uint32(payload[8:12]),
		int64(binary.BigEndian.Uint64(payload[12:20])),
		payload[20], nil
}

// closedHelloPayload encodes a CHELLO frame payload.
func closedHelloPayload(gen byte, sessionID uint64) []byte {
	buf := make([]byte, 9)
	buf[0] = gen
	binary.BigEndian.PutUint64(buf[1:9], sessionID)
	return buf
}

// decodeClosedHello decodes a CHELLO frame payload.
func decodeClosedHello(payload []byte) (gen byte, sessionID uint64, err error) {
	if len(payload) != 9 {
		return 0, 0, fmt.Errorf("replaynet: CHELLO payload is %d bytes, want 9", len(payload))
	}
	return payload[0], binary.BigEndian.Uint64(payload[1:9]), nil
}

// ackPayload encodes an ACK frame payload into buf (≥ 8 bytes).
func ackPayload(buf []byte, appliedSeq uint64) []byte {
	binary.BigEndian.PutUint64(buf[0:8], appliedSeq)
	return buf[:8]
}

// decodeAck decodes an ACK frame payload.
func decodeAck(payload []byte) (appliedSeq uint64, err error) {
	if len(payload) != 8 {
		return 0, fmt.Errorf("replaynet: ACK payload is %d bytes, want 8", len(payload))
	}
	return binary.BigEndian.Uint64(payload), nil
}
