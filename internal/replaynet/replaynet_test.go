package replaynet

import (
	"bytes"
	"net"
	"testing"

	"cptgpt/internal/events"
	"cptgpt/internal/synthetic"
	"cptgpt/internal/trace"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := eventPayload(7, 1234567, byte(events.ServiceRequest))
	if err := writeFrame(&buf, frameEvent, payload); err != nil {
		t.Fatal(err)
	}
	ft, got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ft != frameEvent {
		t.Fatalf("frame type %q", byte(ft))
	}
	ue, ts, ev, err := decodeEvent(got)
	if err != nil {
		t.Fatal(err)
	}
	if ue != 7 || ts != 1234567 || events.Type(ev) != events.ServiceRequest {
		t.Fatalf("decoded %d %d %d", ue, ts, ev)
	}
}

func TestReadFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteByte(byte(frameEvent))
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // 4 GiB length
	if _, _, err := readFrame(&buf); err == nil {
		t.Fatal("oversized frame must be rejected")
	}
}

func TestDecodeEventRejectsShortPayload(t *testing.T) {
	if _, _, _, err := decodeEvent([]byte{1, 2, 3}); err == nil {
		t.Fatal("short payload must error")
	}
}

func TestServerEndToEnd(t *testing.T) {
	d, err := synthetic.Generate(synthetic.Config{
		Generation: events.Gen4G,
		Seed:       1,
		UEs:        map[events.DeviceType]int{events.Phone: 40},
		Hours:      1,
		StartHour:  10,
	})
	if err != nil {
		t.Fatal(err)
	}

	srv, err := ListenAndServe("127.0.0.1:0", events.Gen4G)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stats, err := Replay(srv.Addr().String(), d, ReplayOpts{Speedup: 0}) // as fast as possible
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events != d.NumEvents() {
		t.Fatalf("server saw %d of %d events", stats.Events, d.NumEvents())
	}
	if stats.Rejected != 0 {
		t.Fatalf("clean workload rejected %d events", stats.Rejected)
	}
	if stats.PeakConnectedUEs <= 0 {
		t.Fatal("peak connected UEs must be positive")
	}
	var total int
	for _, c := range stats.ByType {
		total += c
	}
	if total != stats.Events {
		t.Fatalf("per-type counts sum to %d, want %d", total, stats.Events)
	}
}

func TestServerRejectsInvalidSequence(t *testing.T) {
	d := &trace.Dataset{Generation: events.Gen4G, Streams: []trace.Stream{{
		UEID: "u", Device: events.Phone,
		Events: []trace.Event{
			{Time: 0, Type: events.ServiceRequest},
			{Time: 1, Type: events.ServiceRequest}, // invalid while connected
		},
	}}}
	srv, err := ListenAndServe("127.0.0.1:0", events.Gen4G)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	stats, err := Replay(srv.Addr().String(), d, ReplayOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rejected != 1 {
		t.Fatalf("rejected %d, want 1", stats.Rejected)
	}
}

func TestServerGenerationMismatchClosesConn(t *testing.T) {
	srv, err := ListenAndServe("127.0.0.1:0", events.Gen4G)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, frameHello, []byte{byte(events.Gen5G)}); err != nil {
		t.Fatal(err)
	}
	// The server should close; the next read must fail (EOF).
	if _, _, err := readFrame(conn); err == nil {
		t.Fatal("expected connection close on generation mismatch")
	}
}

func TestConcurrentDrivers(t *testing.T) {
	mk := func(seed uint64) *trace.Dataset {
		d, err := synthetic.Generate(synthetic.Config{
			Generation: events.Gen4G,
			Seed:       seed,
			UEs:        map[events.DeviceType]int{events.Phone: 15},
			Hours:      1,
			StartHour:  10,
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	d1, d2 := mk(2), mk(3)

	srv, err := ListenAndServe("127.0.0.1:0", events.Gen4G)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	done := make(chan error, 2)
	go func() {
		_, err := Replay(srv.Addr().String(), d1, ReplayOpts{})
		done <- err
	}()
	go func() {
		_, err := Replay(srv.Addr().String(), d2, ReplayOpts{})
		done <- err
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	snap := srv.Snapshot()
	if snap.Events != d1.NumEvents()+d2.NumEvents() {
		t.Fatalf("server saw %d events, want %d", snap.Events, d1.NumEvents()+d2.NumEvents())
	}
}
