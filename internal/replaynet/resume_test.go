package replaynet

import (
	"strings"
	"testing"
	"time"

	"cptgpt/internal/events"
	"cptgpt/internal/faultnet"
)

// seqSourceFrom yields seqSource(n)'s events starting at 0-based index lo —
// the suffix a fast-forwarded scenario stream would deliver to a resumed
// incarnation whose checkpoint covered the first lo events.
func seqSourceFrom(lo, n int) EventSource {
	i := lo
	return sourceFunc(func() (ReplayEvent, bool, error) {
		if i >= n {
			return ReplayEvent{}, false, nil
		}
		ev := ReplayEvent{
			Time: float64(i) * 0.01,
			UE:   uint64((i / 2) % 16),
			Type: events.Attach,
		}
		if i%2 == 1 {
			ev.Type = events.Detach
		}
		i++
		return ev, true, nil
	})
}

// TestClosedLoopCrashResume pins the crash-recovery contract end to end: an
// incarnation that dies dirty (no BYE, checkpoint older than the server's
// applied state) is resumed by a second incarnation with the same session
// ID and ResumeFrom = the stale checkpoint, and the server still applies
// every event exactly once.
func TestClosedLoopCrashResume(t *testing.T) {
	srv, err := ListenAndServe("127.0.0.1:0", events.Gen4G)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const (
		n       = 400
		session = 7001
	)

	// Incarnation 1: replay the first 120 events, then "crash" — the
	// source just ends and the driver drains. The final BYE is harmless:
	// the server keeps session state across disconnects either way.
	var live LiveStats
	opts1 := fastOpts(session)
	opts1.Live = &live
	st1, err := ReplayClosed(srv.Addr().String(), events.Gen4G, seqSource(120), opts1)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Server.Events != 120 {
		t.Fatalf("incarnation 1 applied %d, want 120", st1.Server.Events)
	}
	if got := live.AckedSeq.Load(); got != 120 {
		t.Fatalf("live AckedSeq = %d, want 120", got)
	}

	// Incarnation 2 resumes from a checkpoint *older* than the server's
	// applied state (a crash always loses the tail between the last
	// durable checkpoint and the server's truth): ResumeFrom=100, source
	// fast-forwarded to event index 100. The 20 events the server already
	// applied are skipped without sending.
	opts2 := fastOpts(session)
	opts2.ResumeFrom = 100
	var live2 LiveStats
	opts2.Live = &live2
	st2, err := ReplayClosed(srv.Addr().String(), events.Gen4G, seqSourceFrom(100, n), opts2)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Server.Events != n {
		t.Fatalf("after resume the server applied %d events, want exactly %d (loss or duplication)", st2.Server.Events, n)
	}
	if st2.Server.Duplicates != 0 {
		t.Fatalf("resume produced %d duplicate applications", st2.Server.Duplicates)
	}
	// Incarnation 2 transmitted only the unapplied suffix.
	if st2.Sent != n-120 {
		t.Fatalf("incarnation 2 sent %d events, want %d", st2.Sent, n-120)
	}
	if got := live2.AckedSeq.Load(); got != n {
		t.Fatalf("resumed AckedSeq = %d, want %d (absolute across incarnations)", got, n)
	}
}

// TestClosedLoopCrashResumeUnderFaults reruns the crash-resume shape with
// fault injection on both sides: zero loss, zero duplication regardless of
// the reconnect/retransmit schedule the faults force.
func TestClosedLoopCrashResumeUnderFaults(t *testing.T) {
	cfg := faultnet.Config{Seed: 21, DropProb: 0.02, StallProb: 0.02, StallDur: 2 * time.Millisecond}
	scfg := faultnet.Config{Seed: 22, DropProb: 0.02, ResetProb: 0.005}
	srv, err := ListenAndServeOpts("127.0.0.1:0", events.Gen4G, ServerOpts{Fault: &scfg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const (
		n       = 300
		session = 7002
	)
	opts1 := fastOpts(session)
	opts1.MaxReconnects = 50
	opts1.Dial = faultnet.Dialer(cfg)
	if _, err := ReplayClosed(srv.Addr().String(), events.Gen4G, seqSource(90), opts1); err != nil {
		t.Fatal(err)
	}

	opts2 := fastOpts(session)
	opts2.MaxReconnects = 50
	opts2.Dial = faultnet.Dialer(faultnet.Config{Seed: 23, DropProb: 0.02, PartialProb: 0.01})
	opts2.ResumeFrom = 70 // stale checkpoint: 20 events already applied
	st, err := ReplayClosed(srv.Addr().String(), events.Gen4G, seqSourceFrom(70, n), opts2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Server.Events != n {
		t.Fatalf("server applied %d events, want exactly %d", st.Server.Events, n)
	}
}

// TestClosedLoopResumeSessionLost pins the fail-fast path: when the server
// has no session state (restart), a ResumeFrom replay must error out
// instead of silently double-applying from sequence 1.
func TestClosedLoopResumeSessionLost(t *testing.T) {
	srv, err := ListenAndServe("127.0.0.1:0", events.Gen4G)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	opts := fastOpts(7003) // fresh session: server will report applied=0
	opts.ResumeFrom = 50
	_, err = ReplayClosed(srv.Addr().String(), events.Gen4G, seqSourceFrom(50, 100), opts)
	if err == nil {
		t.Fatal("resume against a lost session did not fail")
	}
	if !strings.Contains(err.Error(), "session state lost") {
		t.Fatalf("error %q does not identify the lost session", err)
	}
}
