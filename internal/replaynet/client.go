package replaynet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"time"

	"cptgpt/internal/trace"
)

// ReplayOpts tunes a driver run.
type ReplayOpts struct {
	// Speedup divides trace time: 60 replays an hour of trace in a minute.
	// A Speedup ≤ 0 replays as fast as the connection allows (no pacing).
	Speedup float64
	// Deadline bounds the total wall-clock replay duration; 0 means none.
	Deadline time.Duration
}

// Replay connects to a replaynet server at addr, paces the dataset's merged
// event sequence onto the wire and returns the server's final stats. Events
// across all streams are interleaved in timestamp order, exactly the load a
// real core would see from the UE population.
func Replay(addr string, d *trace.Dataset, opts ReplayOpts) (Stats, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return Stats{}, fmt.Errorf("replaynet: dial %s: %w", addr, err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	br := bufio.NewReader(conn)

	if err := writeFrame(bw, frameHello, []byte{byte(d.Generation)}); err != nil {
		return Stats{}, err
	}

	// Merge events across streams in time order.
	type item struct {
		t  float64
		ue uint32
		ev byte
	}
	var all []item
	for ue := range d.Streams {
		for _, e := range d.Streams[ue].Events {
			all = append(all, item{t: e.Time, ue: uint32(ue), ev: byte(e.Type)})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].t < all[j].t })

	start := time.Now()
	var t0 float64
	if len(all) > 0 {
		t0 = all[0].t
	}
	for _, it := range all {
		if opts.Deadline > 0 && time.Since(start) > opts.Deadline {
			break
		}
		if opts.Speedup > 0 {
			due := time.Duration((it.t - t0) / opts.Speedup * float64(time.Second))
			if wait := due - time.Since(start); wait > 0 {
				time.Sleep(wait)
			}
		}
		if err := writeFrame(bw, frameEvent, eventPayload(it.ue, int64(it.t*1e6), it.ev)); err != nil {
			return Stats{}, err
		}
	}

	// Ask for the final stats.
	if err := writeFrame(bw, frameStats, nil); err != nil {
		return Stats{}, err
	}
	if err := bw.Flush(); err != nil {
		return Stats{}, fmt.Errorf("replaynet: flushing: %w", err)
	}
	ft, payload, err := readFrame(br)
	if err != nil {
		return Stats{}, fmt.Errorf("replaynet: reading report: %w", err)
	}
	if ft != frameReport {
		return Stats{}, fmt.Errorf("replaynet: expected REPORT frame, got %q", byte(ft))
	}
	var st Stats
	if err := json.Unmarshal(payload, &st); err != nil {
		return Stats{}, fmt.Errorf("replaynet: decoding report: %w", err)
	}
	if err := writeFrame(bw, frameBye, nil); err == nil {
		_ = bw.Flush()
	}
	return st, nil
}
