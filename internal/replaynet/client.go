package replaynet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"time"

	"cptgpt/internal/events"
	"cptgpt/internal/trace"
)

// ReplayOpts tunes a driver run.
type ReplayOpts struct {
	// Speedup divides trace time: 60 replays an hour of trace in a minute.
	// A Speedup ≤ 0 replays as fast as the connection allows (no pacing).
	Speedup float64
	// Deadline bounds the total wall-clock replay duration; 0 means none.
	Deadline time.Duration
}

// ReplayEvent is one wire-bound control-plane event: a virtual timestamp,
// the UE it belongs to (any stable 64-bit key) and the event type.
type ReplayEvent struct {
	Time float64
	UE   uint64
	Type events.Type
}

// EventSource feeds ReplayStream a time-ordered event sequence, one event
// per call; ok=false ends the replay. Sources may be arbitrarily long — the
// client never buffers them.
type EventSource interface {
	NextReplayEvent() (ev ReplayEvent, ok bool, err error)
}

// Replay connects to a replaynet server at addr, paces the dataset's merged
// event sequence onto the wire and returns the server's final stats. Events
// across all streams are interleaved in timestamp order, exactly the load a
// real core would see from the UE population.
func Replay(addr string, d *trace.Dataset, opts ReplayOpts) (Stats, error) {
	var all []ReplayEvent
	for ue := range d.Streams {
		for _, e := range d.Streams[ue].Events {
			all = append(all, ReplayEvent{Time: e.Time, UE: uint64(ue), Type: e.Type})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Time < all[j].Time })
	i := 0
	next := func() (ReplayEvent, bool, error) {
		if i >= len(all) {
			return ReplayEvent{}, false, nil
		}
		ev := all[i]
		i++
		return ev, true, nil
	}
	return ReplayStream(addr, d.Generation, sourceFunc(next), opts)
}

// sourceFunc adapts a closure to an EventSource.
type sourceFunc func() (ReplayEvent, bool, error)

func (f sourceFunc) NextReplayEvent() (ReplayEvent, bool, error) { return f() }

// ReplayStream connects to a replaynet server at addr and paces a
// time-ordered event sequence pulled incrementally from src onto the wire —
// the streaming counterpart of Replay that the scenario engine uses to
// drive a server with million-UE workloads in bounded memory. 64-bit UE
// keys are mapped to the protocol's 32-bit UE indices in first-seen order.
func ReplayStream(addr string, gen events.Generation, src EventSource, opts ReplayOpts) (Stats, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return Stats{}, fmt.Errorf("replaynet: dial %s: %w", addr, err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	br := bufio.NewReader(conn)

	if err := writeFrame(bw, frameHello, []byte{byte(gen)}); err != nil {
		return Stats{}, err
	}

	start := time.Now()
	ueIdx := make(map[uint64]uint32)
	var t0 float64
	first := true
	// The writer is buffered for throughput, but a paced replay must not let
	// events sit in the buffer while the pacer sleeps — the server would see
	// them in bursts a flush interval late instead of on their schedule. So
	// the buffer is flushed before every pacing sleep and, on unpaced or
	// densely-paced stretches, at least every flushEvery of wall time.
	const flushEvery = 50 * time.Millisecond
	lastFlush := start
	flush := func() error {
		if err := bw.Flush(); err != nil {
			return fmt.Errorf("replaynet: flushing: %w", err)
		}
		lastFlush = time.Now()
		return nil
	}
	for {
		ev, ok, err := src.NextReplayEvent()
		if err != nil {
			return Stats{}, fmt.Errorf("replaynet: event source: %w", err)
		}
		if !ok {
			break
		}
		if first {
			t0 = ev.Time
			first = false
		}
		if opts.Deadline > 0 && time.Since(start) > opts.Deadline {
			break
		}
		if opts.Speedup > 0 {
			due := time.Duration((ev.Time - t0) / opts.Speedup * float64(time.Second))
			if wait := due - time.Since(start); wait > 0 {
				if err := flush(); err != nil {
					return Stats{}, err
				}
				time.Sleep(wait)
			}
		}
		if time.Since(lastFlush) >= flushEvery {
			if err := flush(); err != nil {
				return Stats{}, err
			}
		}
		idx, seen := ueIdx[ev.UE]
		if !seen {
			idx = uint32(len(ueIdx))
			ueIdx[ev.UE] = idx
		}
		if err := writeFrame(bw, frameEvent, eventPayload(idx, int64(ev.Time*1e6), byte(ev.Type))); err != nil {
			return Stats{}, err
		}
	}

	// Ask for the final stats.
	if err := writeFrame(bw, frameStats, nil); err != nil {
		return Stats{}, err
	}
	if err := bw.Flush(); err != nil {
		return Stats{}, fmt.Errorf("replaynet: flushing: %w", err)
	}
	ft, payload, err := readFrame(br)
	if err != nil {
		return Stats{}, fmt.Errorf("replaynet: reading report: %w", err)
	}
	if ft != frameReport {
		return Stats{}, fmt.Errorf("replaynet: expected REPORT frame, got %q", byte(ft))
	}
	var st Stats
	if err := json.Unmarshal(payload, &st); err != nil {
		return Stats{}, fmt.Errorf("replaynet: decoding report: %w", err)
	}
	if err := writeFrame(bw, frameBye, nil); err == nil {
		_ = bw.Flush()
	}
	return st, nil
}
