package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"

	"cptgpt/internal/events"
)

// WriteCSV emits the dataset in the flat interchange format used by the
// command-line tools: one event per row,
//
//	ue_id,device_type,timestamp,event_type
//
// with a header row. Rows are grouped by stream in dataset order.
func WriteCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"ue_id", "device_type", "timestamp", "event_type"}); err != nil {
		return fmt.Errorf("trace: writing CSV header: %w", err)
	}
	row := make([]string, 4)
	for i := range d.Streams {
		s := &d.Streams[i]
		row[0] = s.UEID
		row[1] = s.Device.String()
		for _, e := range s.Events {
			row[2] = strconv.FormatFloat(e.Time, 'f', -1, 64)
			row[3] = e.Type.String()
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("trace: writing CSV row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses the format produced by WriteCSV. Consecutive rows with the
// same ue_id are grouped into one stream; the generation must be supplied by
// the caller since the CSV carries only event names.
func ReadCSV(r io.Reader, gen events.Generation) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV header: %w", err)
	}
	if header[0] != "ue_id" {
		return nil, fmt.Errorf("trace: unexpected CSV header %v", header)
	}
	d := &Dataset{Generation: gen}
	var cur *Stream
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: reading CSV line %d: %w", line, err)
		}
		dev, err := events.ParseDeviceType(rec[1])
		if err != nil {
			return nil, fmt.Errorf("trace: CSV line %d: %w", line, err)
		}
		ts, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: CSV line %d: bad timestamp: %w", line, err)
		}
		et, err := events.ParseType(rec[3])
		if err != nil {
			return nil, fmt.Errorf("trace: CSV line %d: %w", line, err)
		}
		if cur == nil || cur.UEID != rec[0] {
			d.Streams = append(d.Streams, Stream{UEID: rec[0], Device: dev})
			cur = &d.Streams[len(d.Streams)-1]
		}
		cur.Events = append(cur.Events, Event{Time: ts, Type: et})
	}
	return d, nil
}

// jsonlHeader is the first line of a JSONL trace file.
type jsonlHeader struct {
	Format     string `json:"format"`
	Generation string `json:"generation"`
	Streams    int    `json:"streams"`
}

// WriteJSONL emits the dataset as JSON Lines: a header object followed by
// one Stream object per line. JSONL is the preferred on-disk format because
// it streams and keeps per-UE grouping explicit.
func WriteJSONL(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	hdr := jsonlHeader{Format: "cptgpt-trace/1", Generation: d.Generation.String(), Streams: len(d.Streams)}
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("trace: writing JSONL header: %w", err)
	}
	for i := range d.Streams {
		if err := enc.Encode(&d.Streams[i]); err != nil {
			return fmt.Errorf("trace: writing stream %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses the format produced by WriteJSONL.
func ReadJSONL(r io.Reader) (*Dataset, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var hdr jsonlHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("trace: reading JSONL header: %w", err)
	}
	if hdr.Format != "cptgpt-trace/1" {
		return nil, fmt.Errorf("trace: unsupported trace format %q", hdr.Format)
	}
	gen, err := events.ParseGeneration(hdr.Generation)
	if err != nil {
		return nil, fmt.Errorf("trace: JSONL header: %w", err)
	}
	d := &Dataset{Generation: gen}
	if hdr.Streams > 0 {
		d.Streams = make([]Stream, 0, hdr.Streams)
	}
	for i := 0; ; i++ {
		var s Stream
		if err := dec.Decode(&s); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("trace: reading stream %d: %w", i, err)
		}
		d.Streams = append(d.Streams, s)
	}
	return d, nil
}

// SaveFile writes the dataset to path, choosing the format by extension:
// ".csv" for CSV, anything else for JSONL; a ".gz" suffix transparently
// gzip-compresses either format. JSONL goes through the incremental
// StreamWriter, so no second copy of the dataset is buffered.
func SaveFile(path string, d *Dataset) (err error) {
	if !isCSV(formatPath(path)) {
		sw, err := CreateStream(path, d.Generation)
		if err != nil {
			return err
		}
		for i := range d.Streams {
			if err := sw.WriteStream(&d.Streams[i]); err != nil {
				sw.Close()
				return err
			}
		}
		return sw.Close()
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: creating %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	var w io.Writer = f
	if isGzip(path) {
		gz := gzip.NewWriter(f)
		defer func() {
			if cerr := gz.Close(); err == nil {
				err = cerr
			}
		}()
		w = gz
	}
	return WriteCSV(w, d)
}

// LoadFile reads a dataset from path, choosing the format by extension and
// transparently decompressing a ".gz" suffix. The generation argument is
// only consulted for CSV files (JSONL embeds it). JSONL goes through the
// incremental StreamReader.
func LoadFile(path string, gen events.Generation) (*Dataset, error) {
	if !isCSV(formatPath(path)) {
		sr, err := OpenStream(path)
		if err != nil {
			return nil, err
		}
		defer sr.Close()
		d := &Dataset{Generation: sr.Generation()}
		for {
			var s Stream
			if err := sr.Next(&s); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			d.Streams = append(d.Streams, s)
		}
		return d, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: opening %s: %w", path, err)
	}
	defer f.Close()
	var r io.Reader = f
	if isGzip(path) {
		gz, err := gzip.NewReader(bufio.NewReader(f))
		if err != nil {
			return nil, fmt.Errorf("trace: opening gzip %s: %w", path, err)
		}
		defer gz.Close()
		r = gz
	}
	return ReadCSV(r, gen)
}

func isCSV(path string) bool {
	return len(path) >= 4 && path[len(path)-4:] == ".csv"
}
