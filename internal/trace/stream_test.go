package trace

import (
	"bytes"
	"io"
	"path/filepath"
	"reflect"
	"testing"

	"cptgpt/internal/events"
)

func TestStreamWriterReaderRoundTrip(t *testing.T) {
	d := sampleDataset()
	var buf bytes.Buffer
	w := NewStreamWriter(&buf, d.Generation)
	for i := range d.Streams {
		if err := w.WriteStream(&d.Streams[i]); err != nil {
			t.Fatal(err)
		}
	}
	if w.Streams() != len(d.Streams) {
		t.Fatalf("wrote %d streams, want %d", w.Streams(), len(d.Streams))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewStreamReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Generation() != d.Generation {
		t.Fatalf("generation %v, want %v", r.Generation(), d.Generation)
	}
	var got []Stream
	for {
		var s Stream
		if err := r.Next(&s); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		got = append(got, s)
	}
	if !reflect.DeepEqual(got, d.Streams) {
		t.Fatalf("streamed round trip mismatch:\n got %+v\nwant %+v", got, d.Streams)
	}
}

// A streamed trace must be readable by the whole-dataset JSONL reader and
// vice versa (the header's unknown stream count is -1).
func TestStreamWriterReadableByReadJSONL(t *testing.T) {
	d := sampleDataset()
	var buf bytes.Buffer
	w := NewStreamWriter(&buf, d.Generation)
	for i := range d.Streams {
		if err := w.WriteStream(&d.Streams[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Streams, d.Streams) {
		t.Fatal("ReadJSONL cannot read a streamed trace")
	}

	buf.Reset()
	if err := WriteJSONL(&buf, d); err != nil {
		t.Fatal(err)
	}
	r, err := NewStreamReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var s Stream
	if err := r.Next(&s); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, d.Streams[0]) {
		t.Fatal("StreamReader cannot read a WriteJSONL trace")
	}
}

func TestEmptyStreamWriterStillValid(t *testing.T) {
	var buf bytes.Buffer
	w := NewStreamWriter(&buf, events.Gen5G)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	d, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.Generation != events.Gen5G || len(d.Streams) != 0 {
		t.Fatalf("empty trace read back wrong: %+v", d)
	}
}

func TestFileRoundTripGzip(t *testing.T) {
	d := sampleDataset()
	dir := t.TempDir()
	for _, name := range []string{"t.jsonl.gz", "t.csv.gz", "t.jsonl", "t.csv"} {
		path := filepath.Join(dir, name)
		if err := SaveFile(path, d); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := LoadFile(path, d.Generation)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.NumStreams() != d.NumStreams() || got.NumEvents() != d.NumEvents() {
			t.Fatalf("%s: round trip lost data: %d/%d streams, %d/%d events",
				name, got.NumStreams(), d.NumStreams(), got.NumEvents(), d.NumEvents())
		}
		if !reflect.DeepEqual(got.Streams[0].Events, d.Streams[0].Events) {
			t.Fatalf("%s: stream 0 mismatch", name)
		}
	}
}

func TestCreateStreamGzipRoundTrip(t *testing.T) {
	d := sampleDataset()
	path := filepath.Join(t.TempDir(), "stream.jsonl.gz")
	w, err := CreateStream(path, d.Generation)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Streams {
		if err := w.WriteStream(&d.Streams[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenStream(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var n int
	for {
		var s Stream
		if err := r.Next(&s); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != len(d.Streams) {
		t.Fatalf("read %d streams, want %d", n, len(d.Streams))
	}
}
