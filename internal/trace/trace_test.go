package trace

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"
	"testing/quick"

	"cptgpt/internal/events"
)

func sampleDataset() *Dataset {
	return &Dataset{
		Generation: events.Gen4G,
		Streams: []Stream{
			{
				UEID:   "ue-1",
				Device: events.Phone,
				Events: []Event{
					{Time: 0, Type: events.Attach},
					{Time: 10, Type: events.S1ConnRel},
					{Time: 100, Type: events.ServiceRequest},
					{Time: 130, Type: events.S1ConnRel},
				},
			},
			{
				UEID:   "ue-2",
				Device: events.Tablet,
				Events: []Event{
					{Time: 5, Type: events.Attach},
					{Time: 3700, Type: events.TAU},
				},
			},
		},
	}
}

func TestInterarrivals(t *testing.T) {
	d := sampleDataset()
	ia := d.Streams[0].Interarrivals()
	want := []float64{0, 10, 90, 30}
	for i := range want {
		if ia[i] != want[i] {
			t.Fatalf("interarrivals %v, want %v", ia, want)
		}
	}
	pooled := d.Interarrivals()
	// stream 0 contributes {10,90,30}, stream 1 contributes {3695}.
	if len(pooled) != 4 {
		t.Fatalf("pooled interarrivals %v", pooled)
	}
}

func TestEventBreakdownSums(t *testing.T) {
	d := sampleDataset()
	shares, vocab := d.EventBreakdown()
	if len(shares) != len(vocab) {
		t.Fatal("shape mismatch")
	}
	var sum float64
	for _, s := range shares {
		sum += s
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("breakdown sums to %v", sum)
	}
	relIdx := events.VocabIndex(events.Gen4G, events.S1ConnRel)
	if shares[relIdx] != 2.0/6.0 {
		t.Fatalf("S1_CONN_REL share %v, want 2/6", shares[relIdx])
	}
}

func TestFlowLengths(t *testing.T) {
	d := sampleDataset()
	all := d.FlowLengths(nil)
	if all[0] != 4 || all[1] != 2 {
		t.Fatalf("flow lengths %v", all)
	}
	srv := events.ServiceRequest
	per := d.FlowLengths(&srv)
	if per[0] != 1 || per[1] != 0 {
		t.Fatalf("SRV_REQ lengths %v", per)
	}
}

func TestSliceHour(t *testing.T) {
	d := sampleDataset()
	h0 := d.SliceHour(0)
	if h0.NumStreams() != 2 {
		t.Fatalf("hour 0 streams %d", h0.NumStreams())
	}
	// ue-2's second event is at t=3700 (hour 1).
	if h0.Streams[1].Len() != 1 {
		t.Fatalf("ue-2 hour-0 events %d, want 1", h0.Streams[1].Len())
	}
	h1 := d.SliceHour(1)
	if h1.NumStreams() != 1 || h1.Streams[0].Len() != 1 {
		t.Fatalf("hour 1: %+v", h1)
	}
	if h1.Streams[0].UEID == d.Streams[1].UEID {
		t.Fatal("hour slices must rename UEs (treated as different UEs per hour)")
	}
}

func TestCapLength(t *testing.T) {
	d := sampleDataset()
	capped := d.CapLength(3)
	if capped.NumStreams() != 1 || capped.Streams[0].UEID != "ue-2" {
		t.Fatalf("capped: %+v", capped.Summarize())
	}
}

func TestFilterDeviceAndSample(t *testing.T) {
	d := sampleDataset()
	phones := d.FilterDevice(events.Phone)
	if phones.NumStreams() != 1 || phones.Streams[0].UEID != "ue-1" {
		t.Fatal("FilterDevice failed")
	}
	s := d.Sample(1)
	if s.NumStreams() != 1 {
		t.Fatal("Sample(1) failed")
	}
	if d.Sample(100).NumStreams() != 2 {
		t.Fatal("oversampling should return all")
	}
	if d.Sample(0).NumStreams() != 0 {
		t.Fatal("Sample(0) should be empty")
	}
}

func TestInitialEventDist(t *testing.T) {
	d := sampleDataset()
	dist := d.InitialEventDist()
	atchIdx := events.VocabIndex(events.Gen4G, events.Attach)
	if dist[atchIdx] != 1 {
		t.Fatalf("initial dist %v: both streams start with ATCH", dist)
	}
}

func TestSummarize(t *testing.T) {
	s := sampleDataset().Summarize()
	if s.Streams != 2 || s.Events != 6 || s.MinLen != 2 || s.MaxLen != 4 {
		t.Fatalf("summary %+v", s)
	}
	if s.ByDevice[events.Phone] != 1 || s.ByDevice[events.Tablet] != 1 {
		t.Fatalf("device counts %+v", s.ByDevice)
	}
	if s.String() == "" {
		t.Fatal("summary string empty")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := sampleDataset()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, events.Gen4G)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualDatasets(t, d, got)
}

func TestJSONLRoundTrip(t *testing.T) {
	d := sampleDataset()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation != d.Generation {
		t.Fatal("generation lost")
	}
	assertEqualDatasets(t, d, got)
}

func TestFileRoundTripBothFormats(t *testing.T) {
	d := sampleDataset()
	dir := t.TempDir()
	for _, name := range []string{"trace.csv", "trace.jsonl"} {
		path := filepath.Join(dir, name)
		if err := SaveFile(path, d); err != nil {
			t.Fatal(err)
		}
		got, err := LoadFile(path, events.Gen4G)
		if err != nil {
			t.Fatal(err)
		}
		assertEqualDatasets(t, d, got)
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(bytes.NewBufferString(`{"format":"other/9"}`)); err == nil {
		t.Fatal("wrong format header must error")
	}
	if _, err := ReadJSONL(bytes.NewBufferString(`not json`)); err == nil {
		t.Fatal("garbage must error")
	}
}

func TestReadCSVRejectsBadRows(t *testing.T) {
	bad := "ue_id,device_type,timestamp,event_type\nu1,phone,notanumber,ATCH\n"
	if _, err := ReadCSV(bytes.NewBufferString(bad), events.Gen4G); err == nil {
		t.Fatal("bad timestamp must error")
	}
	bad = "ue_id,device_type,timestamp,event_type\nu1,phone,1.5,NOPE\n"
	if _, err := ReadCSV(bytes.NewBufferString(bad), events.Gen4G); err == nil {
		t.Fatal("bad event must error")
	}
	bad = "ue_id,device_type,timestamp,event_type\nu1,fridge,1.5,ATCH\n"
	if _, err := ReadCSV(bytes.NewBufferString(bad), events.Gen4G); err == nil {
		t.Fatal("bad device must error")
	}
}

func assertEqualDatasets(t *testing.T, want, got *Dataset) {
	t.Helper()
	if got.NumStreams() != want.NumStreams() {
		t.Fatalf("streams %d, want %d", got.NumStreams(), want.NumStreams())
	}
	for i := range want.Streams {
		ws, gs := &want.Streams[i], &got.Streams[i]
		if ws.UEID != gs.UEID || ws.Device != gs.Device || len(ws.Events) != len(gs.Events) {
			t.Fatalf("stream %d header mismatch", i)
		}
		for j := range ws.Events {
			if ws.Events[j] != gs.Events[j] {
				t.Fatalf("stream %d event %d: %v vs %v", i, j, ws.Events[j], gs.Events[j])
			}
		}
	}
}

// Property: SortByTime yields non-decreasing timestamps and preserves the
// event multiset.
func TestSortByTimeProperty(t *testing.T) {
	f := func(times []float64) bool {
		s := Stream{UEID: "u", Device: events.Phone}
		counts := map[float64]int{}
		for _, x := range times {
			if math.IsNaN(x) {
				x = 0
			}
			s.Events = append(s.Events, Event{Time: x, Type: events.TAU})
			counts[x]++
		}
		s.SortByTime()
		for i := 1; i < len(s.Events); i++ {
			if s.Events[i].Time < s.Events[i-1].Time {
				return false
			}
		}
		for _, e := range s.Events {
			counts[e.Time]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := sampleDataset()
	c := d.Streams[0].Clone()
	c.Events[0].Time = 999
	if d.Streams[0].Events[0].Time == 999 {
		t.Fatal("Clone must not share event storage")
	}
}
