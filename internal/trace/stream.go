package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"cptgpt/internal/events"
)

// StreamWriter writes a trace incrementally, one UE stream at a time, in
// the JSONL trace format. It is the streaming counterpart of WriteJSONL:
// callers that synthesize millions of streams hand each batch to the writer
// as it is produced instead of materializing a whole Dataset first. The
// stream count in the header is written as -1 (unknown); ReadJSONL and
// StreamReader treat that as "until EOF".
type StreamWriter struct {
	bw      *bufio.Writer
	enc     *json.Encoder
	gz      *gzip.Writer
	f       *os.File
	wrote   int
	started bool
	gen     events.Generation
}

// NewStreamWriter starts a JSONL trace on w. The header is emitted lazily
// on the first WriteStream (or on Close for an empty trace).
func NewStreamWriter(w io.Writer, gen events.Generation) *StreamWriter {
	bw := bufio.NewWriter(w)
	return &StreamWriter{bw: bw, enc: json.NewEncoder(bw), gen: gen}
}

// CreateStream opens path and returns a StreamWriter over it. A ".gz"
// suffix transparently gzip-compresses the output; the trace format is
// chosen from the extension under the ".gz" (only JSONL is supported for
// streaming writes). Close flushes and closes the file.
func CreateStream(path string, gen events.Generation) (*StreamWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("trace: creating %s: %w", path, err)
	}
	var w io.Writer = f
	var gz *gzip.Writer
	if isGzip(path) {
		gz = gzip.NewWriter(f)
		w = gz
	}
	sw := NewStreamWriter(w, gen)
	sw.gz = gz
	sw.f = f
	return sw, nil
}

func (w *StreamWriter) header() error {
	if w.started {
		return nil
	}
	w.started = true
	hdr := jsonlHeader{Format: "cptgpt-trace/1", Generation: w.gen.String(), Streams: -1}
	if err := w.enc.Encode(hdr); err != nil {
		return fmt.Errorf("trace: writing JSONL header: %w", err)
	}
	return nil
}

// WriteStream appends one UE stream to the trace.
func (w *StreamWriter) WriteStream(s *Stream) error {
	if err := w.header(); err != nil {
		return err
	}
	if err := w.enc.Encode(s); err != nil {
		return fmt.Errorf("trace: writing stream %d: %w", w.wrote, err)
	}
	w.wrote++
	return nil
}

// Streams returns the number of streams written so far.
func (w *StreamWriter) Streams() int { return w.wrote }

// Close flushes buffered output and closes any file/compressor owned by the
// writer (writers created with NewStreamWriter leave the caller's io.Writer
// open). An empty trace still gets a valid header.
func (w *StreamWriter) Close() error {
	if err := w.header(); err != nil {
		return err
	}
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("trace: flushing: %w", err)
	}
	if w.gz != nil {
		if err := w.gz.Close(); err != nil {
			return fmt.Errorf("trace: closing gzip stream: %w", err)
		}
	}
	if w.f != nil {
		if err := w.f.Close(); err != nil {
			return fmt.Errorf("trace: closing file: %w", err)
		}
	}
	return nil
}

// StreamReader reads a JSONL trace incrementally, one UE stream per Next
// call, without materializing the whole Dataset.
type StreamReader struct {
	dec *json.Decoder
	gz  *gzip.Reader
	f   *os.File
	gen events.Generation
	n   int
}

// NewStreamReader reads the JSONL header from r and positions the reader at
// the first stream.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var hdr jsonlHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("trace: reading JSONL header: %w", err)
	}
	if hdr.Format != "cptgpt-trace/1" {
		return nil, fmt.Errorf("trace: unsupported trace format %q", hdr.Format)
	}
	gen, err := events.ParseGeneration(hdr.Generation)
	if err != nil {
		return nil, fmt.Errorf("trace: JSONL header: %w", err)
	}
	return &StreamReader{dec: dec, gen: gen}, nil
}

// OpenStream opens a JSONL trace at path, transparently decompressing a
// ".gz" suffix. Close releases the file.
func OpenStream(path string) (*StreamReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: opening %s: %w", path, err)
	}
	var r io.Reader = f
	var gz *gzip.Reader
	if isGzip(path) {
		if gz, err = gzip.NewReader(bufio.NewReader(f)); err != nil {
			f.Close()
			return nil, fmt.Errorf("trace: opening gzip %s: %w", path, err)
		}
		r = gz
	}
	sr, err := NewStreamReader(r)
	if err != nil {
		if gz != nil {
			gz.Close()
		}
		f.Close()
		return nil, err
	}
	sr.gz = gz
	sr.f = f
	return sr, nil
}

// Generation returns the generation declared in the trace header.
func (r *StreamReader) Generation() events.Generation { return r.gen }

// Next reads the next UE stream into s. It returns io.EOF (and leaves s
// untouched) when the trace is exhausted.
func (r *StreamReader) Next(s *Stream) error {
	if err := r.dec.Decode(s); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("trace: reading stream %d: %w", r.n, err)
	}
	r.n++
	return nil
}

// Close releases any file/compressor owned by the reader.
func (r *StreamReader) Close() error {
	if r.gz != nil {
		if err := r.gz.Close(); err != nil {
			return fmt.Errorf("trace: closing gzip stream: %w", err)
		}
	}
	if r.f != nil {
		if err := r.f.Close(); err != nil {
			return fmt.Errorf("trace: closing file: %w", err)
		}
	}
	return nil
}

func isGzip(path string) bool { return strings.HasSuffix(path, ".gz") }

// formatPath strips a trailing ".gz" so format detection sees the real
// extension ("trace.csv.gz" → CSV, gzipped).
func formatPath(path string) string { return strings.TrimSuffix(path, ".gz") }
