package statemachine

import (
	"cptgpt/internal/events"
)

// Violation records one semantically invalid event observed during replay:
// event Event arrived while the machine was in state State, at stream
// position Index (0-based, counting all events including pre-bootstrap ones).
type Violation struct {
	Index int
	State State
	Event events.Type
}

// StateEvent is a (state, event) pair, used to aggregate violation
// frequencies as in Table 3 of the paper.
type StateEvent struct {
	State State
	Event events.Type
}

// ReplayResult summarizes the replay of a single stream against the UE
// state machine.
type ReplayResult struct {
	// Counted is the number of events that participated in the semantic
	// check (events preceding the bootstrap event are excluded, per §5.2.1).
	Counted int
	// Skipped is the number of events that preceded the bootstrap event.
	Skipped int
	// Violations lists each state-violating event in order.
	Violations []Violation
	// SojournConnected holds completed CONNECTED-state sojourn durations in
	// seconds, in order of occurrence.
	SojournConnected []float64
	// SojournIdle holds completed IDLE-state sojourn durations in seconds.
	SojournIdle []float64
	// Final is the machine state after the last event.
	Final State
	// Bootstrapped reports whether any event fixed the initial state; when
	// false the whole stream was skipped.
	Bootstrapped bool
}

// Violated reports whether the stream contained at least one violating
// event, the per-stream criterion used in Tables 3 and 5.
func (r *ReplayResult) Violated() bool { return len(r.Violations) > 0 }

// Replay feeds a stream of events with absolute timestamps (seconds) through
// the state machine of m, implementing the paper's replay methodology:
//
//   - the initial state is fixed by the first deterministic-destination
//     event (Bootstrap); earlier events are skipped and not counted;
//   - a violating event increments the violation count and leaves the state
//     unchanged;
//   - the duration spent in each top-level CONNECTED or IDLE visit is
//     recorded as a sojourn sample when the visit completes.
//
// evs and ts must have equal length; ts must be non-decreasing for sojourn
// durations to be meaningful (the replay itself does not reorder).
func Replay(m Machine, evs []events.Type, ts []float64) ReplayResult {
	var res ReplayResult
	if len(evs) != len(ts) {
		panic("statemachine: Replay called with mismatched event/timestamp lengths")
	}

	// Bootstrap: find the first deterministic-destination event.
	start := -1
	var state State
	for i, e := range evs {
		if s, ok := m.Bootstrap(e); ok {
			state = s
			start = i
			break
		}
		res.Skipped++
	}
	if start < 0 {
		res.Final = m.Initial()
		return res
	}
	res.Bootstrapped = true
	res.Counted = 1 // the bootstrap event itself is semantically valid

	top := Top(state)
	topSince := ts[start]

	record := func(from TopState, dur float64) {
		switch from {
		case TopConnected:
			res.SojournConnected = append(res.SojournConnected, dur)
		case TopIdle:
			res.SojournIdle = append(res.SojournIdle, dur)
		}
	}

	for i := start + 1; i < len(evs); i++ {
		e := evs[i]
		res.Counted++
		next, ok := m.Step(state, e)
		if !ok {
			res.Violations = append(res.Violations, Violation{Index: i, State: state, Event: e})
			continue
		}
		if nt := Top(next); nt != top {
			record(top, ts[i]-topSince)
			top = nt
			topSince = ts[i]
		}
		state = next
	}
	res.Final = state
	return res
}

// AggregateReplay accumulates replay results across many streams into the
// quantities the fidelity metrics need.
type AggregateReplay struct {
	Streams          int
	ViolatedStreams  int
	CountedEvents    int
	ViolatingEvents  int
	ByStateEvent     map[StateEvent]int
	SojournConnected []float64 // all sojourn samples, pooled
	SojournIdle      []float64
	// MeanConnectedPerUE / MeanIdlePerUE hold the per-stream mean sojourn,
	// one entry per stream that had at least one completed sojourn. These
	// feed the per-UE average CDFs of Figure 2 / Figure 5.
	MeanConnectedPerUE []float64
	MeanIdlePerUE      []float64
}

// NewAggregateReplay returns an empty aggregator.
func NewAggregateReplay() *AggregateReplay {
	return &AggregateReplay{ByStateEvent: make(map[StateEvent]int)}
}

// Add folds one stream's replay result into the aggregate.
func (a *AggregateReplay) Add(r *ReplayResult) {
	a.Streams++
	if r.Violated() {
		a.ViolatedStreams++
	}
	a.CountedEvents += r.Counted
	a.ViolatingEvents += len(r.Violations)
	for _, v := range r.Violations {
		a.ByStateEvent[StateEvent{State: v.State, Event: v.Event}]++
	}
	a.SojournConnected = append(a.SojournConnected, r.SojournConnected...)
	a.SojournIdle = append(a.SojournIdle, r.SojournIdle...)
	if n := len(r.SojournConnected); n > 0 {
		a.MeanConnectedPerUE = append(a.MeanConnectedPerUE, mean(r.SojournConnected))
	}
	if n := len(r.SojournIdle); n > 0 {
		a.MeanIdlePerUE = append(a.MeanIdlePerUE, mean(r.SojournIdle))
	}
}

// EventViolationRate returns the fraction of counted events that violated
// the state machine, in [0, 1].
func (a *AggregateReplay) EventViolationRate() float64 {
	if a.CountedEvents == 0 {
		return 0
	}
	return float64(a.ViolatingEvents) / float64(a.CountedEvents)
}

// StreamViolationRate returns the fraction of streams with at least one
// violating event, in [0, 1].
func (a *AggregateReplay) StreamViolationRate() float64 {
	if a.Streams == 0 {
		return 0
	}
	return float64(a.ViolatedStreams) / float64(a.Streams)
}

// TopViolations returns up to n (state, event) pairs with the highest
// violation counts, ordered by descending count (Table 3's breakdown). The
// second return value gives each pair's share of counted events.
func (a *AggregateReplay) TopViolations(n int) ([]StateEvent, []float64) {
	type kv struct {
		k StateEvent
		v int
	}
	pairs := make([]kv, 0, len(a.ByStateEvent))
	for k, v := range a.ByStateEvent {
		pairs = append(pairs, kv{k, v})
	}
	// Insertion sort by descending count, tie-broken deterministically so
	// output is stable across map iteration orders.
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0; j-- {
			pj, pj1 := pairs[j], pairs[j-1]
			if pj.v > pj1.v ||
				(pj.v == pj1.v && (pj.k.State < pj1.k.State ||
					(pj.k.State == pj1.k.State && pj.k.Event < pj1.k.Event))) {
				pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
			} else {
				break
			}
		}
	}
	if n > len(pairs) {
		n = len(pairs)
	}
	keys := make([]StateEvent, n)
	shares := make([]float64, n)
	for i := 0; i < n; i++ {
		keys[i] = pairs[i].k
		if a.CountedEvents > 0 {
			shares[i] = float64(pairs[i].v) / float64(a.CountedEvents)
		}
	}
	return keys, shares
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
