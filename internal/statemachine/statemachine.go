// Package statemachine implements the two-level hierarchical UE state
// machines for 4G and 5G (Figure 1 of the paper, derived by the prior-art
// SMM work from the 3GPP EMM/ECM and RM/CM state machines), together with a
// replay engine that validates streams, counts semantic violations and
// extracts per-state sojourn times.
//
// The top level merges the mobility-management and connection-management
// machines into three UE states: DEREGISTERED, CONNECTED and IDLE. The
// bottom level refines CONNECTED and IDLE into sub-states keyed by the event
// that entered them, which is what gives the machine enough context to rule
// out sequences such as a second S1_CONN_REL while already idle.
package statemachine

import (
	"fmt"

	"cptgpt/internal/events"
)

// State is a bottom-level state of the hierarchical machine. The zero value
// is Deregistered, which is also the initial state of every UE.
type State int

const (
	// Deregistered is the top-level DEREGISTERED state (no sub-states).
	Deregistered State = iota

	// SrvReqS is the CONNECTED sub-state entered via SRV_REQ (or via
	// ATCH/REGISTER, which also establish a signaling connection).
	SrvReqS
	// HoS is the CONNECTED sub-state entered via a handover.
	HoS
	// TauSConn is the CONNECTED sub-state entered via a TAU performed while
	// connected (4G only).
	TauSConn

	// S1RelS1 is the IDLE sub-state entered by releasing the signaling
	// connection out of SrvReqS (a data-session release), 4G only.
	S1RelS1
	// S1RelS2 is the IDLE sub-state entered by releasing the signaling
	// connection out of HoS or TauSConn (a mobility-driven release), 4G only.
	S1RelS2
	// TauSIdle is the IDLE sub-state entered via a TAU performed while idle
	// (4G only).
	TauSIdle

	// CmIdle is the single 5G CM-IDLE sub-state entered via AN_REL.
	CmIdle

	numStates
)

// NumStates is the number of bottom-level states across both generations.
const NumStates = int(numStates)

var stateNames = [NumStates]string{
	Deregistered: "DEREGISTERED",
	SrvReqS:      "SRV_REQ_S",
	HoS:          "HO_S",
	TauSConn:     "TAU_S_CONN",
	S1RelS1:      "S1_REL_S_1",
	S1RelS2:      "S1_REL_S_2",
	TauSIdle:     "TAU_S_IDLE",
	CmIdle:       "CM_IDLE",
}

// String returns the figure-style name of the state (e.g. "S1_REL_S_1").
func (s State) String() string {
	if s < 0 || int(s) >= NumStates {
		return fmt.Sprintf("State(%d)", int(s))
	}
	return stateNames[s]
}

// Valid reports whether s is a defined state.
func (s State) Valid() bool { return s >= 0 && int(s) < NumStates }

// TopState is a top-level UE state: the three merged EMM/ECM (or RM/CM)
// states of Figure 1.
type TopState int

const (
	// TopDeregistered is the merged DEREGISTERED / RM-DEREGISTERED state.
	TopDeregistered TopState = iota
	// TopConnected is the merged CONNECTED / CM-CONNECTED state.
	TopConnected
	// TopIdle is the merged IDLE / CM-IDLE state.
	TopIdle

	numTopStates
)

// NumTopStates is the number of top-level states.
const NumTopStates = int(numTopStates)

var topNames = [NumTopStates]string{
	TopDeregistered: "DEREGISTERED",
	TopConnected:    "CONNECTED",
	TopIdle:         "IDLE",
}

// String returns the top-level state name.
func (t TopState) String() string {
	if t < 0 || int(t) >= NumTopStates {
		return fmt.Sprintf("TopState(%d)", int(t))
	}
	return topNames[t]
}

// Top maps a bottom-level state to its top-level state.
func Top(s State) TopState {
	switch s {
	case Deregistered:
		return TopDeregistered
	case SrvReqS, HoS, TauSConn:
		return TopConnected
	default:
		return TopIdle
	}
}

// Machine is the hierarchical UE state machine for one cellular generation.
// Machines are stateless value types: the current state is carried by the
// caller, so a single Machine can replay any number of streams concurrently.
type Machine struct {
	gen events.Generation
}

// New returns the hierarchical state machine for generation g.
func New(g events.Generation) Machine { return Machine{gen: g} }

// Generation returns the generation this machine models.
func (m Machine) Generation() events.Generation { return m.gen }

// Initial returns the UE's initial state, DEREGISTERED.
func (m Machine) Initial() State { return Deregistered }

// States returns the bottom-level states reachable in this generation, in
// canonical order.
func (m Machine) States() []State {
	if m.gen == events.Gen5G {
		return []State{Deregistered, SrvReqS, HoS, CmIdle}
	}
	return []State{Deregistered, SrvReqS, HoS, TauSConn, S1RelS1, S1RelS2, TauSIdle}
}

// Step applies event e in state s and returns the next state. ok is false
// when the event violates the 3GPP-derived transition rules, in which case
// next equals s (the machine holds its state, matching the paper's replay
// methodology in §5.2.1).
func (m Machine) Step(s State, e events.Type) (next State, ok bool) {
	if m.gen == events.Gen5G {
		return step5G(s, e)
	}
	return step4G(s, e)
}

func step4G(s State, e events.Type) (State, bool) {
	switch s {
	case Deregistered:
		if e == events.Attach {
			return SrvReqS, true
		}
	case SrvReqS:
		switch e {
		case events.S1ConnRel:
			return S1RelS1, true
		case events.Handover:
			return HoS, true
		case events.TAU:
			return TauSConn, true
		case events.Detach:
			return Deregistered, true
		}
	case HoS, TauSConn:
		switch e {
		case events.S1ConnRel:
			return S1RelS2, true
		case events.Handover:
			return HoS, true
		case events.TAU:
			return TauSConn, true
		case events.Detach:
			return Deregistered, true
		}
	case S1RelS1, S1RelS2, TauSIdle:
		switch e {
		case events.ServiceRequest:
			return SrvReqS, true
		case events.TAU:
			return TauSIdle, true
		case events.Detach:
			return Deregistered, true
		}
	}
	return s, false
}

func step5G(s State, e events.Type) (State, bool) {
	switch s {
	case Deregistered:
		if e == events.Register {
			return SrvReqS, true
		}
	case SrvReqS, HoS:
		switch e {
		case events.ANRel:
			return CmIdle, true
		case events.Handover:
			return HoS, true
		case events.Deregister:
			return Deregistered, true
		}
	case CmIdle:
		switch e {
		case events.ServiceRequest:
			return SrvReqS, true
		case events.Deregister:
			return Deregistered, true
		}
	}
	return s, false
}

// ValidEvents returns the events permitted in state s, in vocabulary order.
func (m Machine) ValidEvents(s State) []events.Type {
	var out []events.Type
	for _, e := range events.Vocabulary(m.gen) {
		if _, ok := m.Step(s, e); ok {
			out = append(out, e)
		}
	}
	return out
}

// Bootstrap implements the initial-state heuristic of §5.2.1: the first
// occurrence of an event whose destination state is deterministic regardless
// of the source state fixes the machine's state. For 4G these events are
// ATCH, DTCH, SRV_REQ and HO; for 5G, REGISTER, DEREGISTER, SRV_REQ and HO.
// It returns the post-event state and ok=true when e is such an event.
func (m Machine) Bootstrap(e events.Type) (State, bool) {
	if m.gen == events.Gen5G {
		switch e {
		case events.Register:
			return SrvReqS, true
		case events.Deregister:
			return Deregistered, true
		case events.ServiceRequest:
			return SrvReqS, true
		case events.Handover:
			return HoS, true
		}
		return Deregistered, false
	}
	switch e {
	case events.Attach:
		return SrvReqS, true
	case events.Detach:
		return Deregistered, true
	case events.ServiceRequest:
		return SrvReqS, true
	case events.Handover:
		return HoS, true
	}
	return Deregistered, false
}
