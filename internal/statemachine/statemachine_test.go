package statemachine

import (
	"testing"
	"testing/quick"

	"cptgpt/internal/events"
)

func TestTopMapping(t *testing.T) {
	cases := map[State]TopState{
		Deregistered: TopDeregistered,
		SrvReqS:      TopConnected,
		HoS:          TopConnected,
		TauSConn:     TopConnected,
		S1RelS1:      TopIdle,
		S1RelS2:      TopIdle,
		TauSIdle:     TopIdle,
		CmIdle:       TopIdle,
	}
	for s, want := range cases {
		if got := Top(s); got != want {
			t.Fatalf("Top(%v) = %v, want %v", s, got, want)
		}
	}
}

// TestFigure1a4G encodes the full 4G transition table of Figure 1a and
// checks Step against it exhaustively.
func TestFigure1a4G(t *testing.T) {
	m := New(events.Gen4G)
	type tr struct {
		from State
		ev   events.Type
		to   State
	}
	valid := []tr{
		{Deregistered, events.Attach, SrvReqS},

		{SrvReqS, events.S1ConnRel, S1RelS1},
		{SrvReqS, events.Handover, HoS},
		{SrvReqS, events.TAU, TauSConn},
		{SrvReqS, events.Detach, Deregistered},

		{HoS, events.S1ConnRel, S1RelS2},
		{HoS, events.Handover, HoS},
		{HoS, events.TAU, TauSConn},
		{HoS, events.Detach, Deregistered},

		{TauSConn, events.S1ConnRel, S1RelS2},
		{TauSConn, events.Handover, HoS},
		{TauSConn, events.TAU, TauSConn},
		{TauSConn, events.Detach, Deregistered},

		{S1RelS1, events.ServiceRequest, SrvReqS},
		{S1RelS1, events.TAU, TauSIdle},
		{S1RelS1, events.Detach, Deregistered},

		{S1RelS2, events.ServiceRequest, SrvReqS},
		{S1RelS2, events.TAU, TauSIdle},
		{S1RelS2, events.Detach, Deregistered},

		{TauSIdle, events.ServiceRequest, SrvReqS},
		{TauSIdle, events.TAU, TauSIdle},
		{TauSIdle, events.Detach, Deregistered},
	}
	validSet := make(map[[2]int]State)
	for _, v := range valid {
		got, ok := m.Step(v.from, v.ev)
		if !ok || got != v.to {
			t.Fatalf("Step(%v, %v) = %v, %v; want %v, true", v.from, v.ev, got, ok, v.to)
		}
		validSet[[2]int{int(v.from), int(v.ev)}] = v.to
	}
	// Everything not listed is a violation, and the state must hold.
	for _, s := range m.States() {
		for _, e := range events.Vocabulary(events.Gen4G) {
			if _, ok := validSet[[2]int{int(s), int(e)}]; ok {
				continue
			}
			got, ok := m.Step(s, e)
			if ok {
				t.Fatalf("Step(%v, %v) unexpectedly valid", s, e)
			}
			if got != s {
				t.Fatalf("violating Step(%v, %v) moved to %v; must hold state", s, e, got)
			}
		}
	}
}

// TestTable3ViolationsAreViolations checks the paper's top NetShare
// violation pairs are indeed invalid in our machine.
func TestTable3ViolationsAreViolations(t *testing.T) {
	m := New(events.Gen4G)
	for _, s := range []State{S1RelS1, S1RelS2} {
		if _, ok := m.Step(s, events.S1ConnRel); ok {
			t.Fatalf("(%v, S1_CONN_REL) must violate (Table 3)", s)
		}
		if _, ok := m.Step(s, events.Handover); ok {
			t.Fatalf("(%v, HO) must violate (Table 3)", s)
		}
	}
	for _, s := range []State{SrvReqS, HoS, TauSConn} {
		if _, ok := m.Step(s, events.ServiceRequest); ok {
			t.Fatalf("(CONNECTED sub-state %v, SRV_REQ) must violate (Table 3)", s)
		}
	}
}

func TestFigure1b5G(t *testing.T) {
	m := New(events.Gen5G)
	steps := []struct {
		from State
		ev   events.Type
		to   State
		ok   bool
	}{
		{Deregistered, events.Register, SrvReqS, true},
		{SrvReqS, events.ANRel, CmIdle, true},
		{SrvReqS, events.Handover, HoS, true},
		{HoS, events.Handover, HoS, true},
		{HoS, events.ANRel, CmIdle, true},
		{CmIdle, events.ServiceRequest, SrvReqS, true},
		{CmIdle, events.Deregister, Deregistered, true},
		{SrvReqS, events.Deregister, Deregistered, true},
		// Violations:
		{CmIdle, events.ANRel, CmIdle, false},
		{CmIdle, events.Handover, CmIdle, false},
		{SrvReqS, events.ServiceRequest, SrvReqS, false},
		{Deregistered, events.ServiceRequest, Deregistered, false},
		// TAU does not exist in 5G (Table 1).
		{SrvReqS, events.TAU, SrvReqS, false},
	}
	for _, tc := range steps {
		got, ok := m.Step(tc.from, tc.ev)
		if ok != tc.ok || got != tc.to {
			t.Fatalf("5G Step(%v, %v) = %v, %v; want %v, %v", tc.from, tc.ev, got, ok, tc.to, tc.ok)
		}
	}
}

func TestBootstrapDeterministicDestinations(t *testing.T) {
	m := New(events.Gen4G)
	for _, tc := range []struct {
		ev   events.Type
		st   State
		want bool
	}{
		{events.Attach, SrvReqS, true},
		{events.Detach, Deregistered, true},
		{events.ServiceRequest, SrvReqS, true},
		{events.Handover, HoS, true},
		{events.TAU, Deregistered, false},       // ambiguous: idle or connected
		{events.S1ConnRel, Deregistered, false}, // ambiguous sub-state
	} {
		st, ok := m.Bootstrap(tc.ev)
		if ok != tc.want {
			t.Fatalf("Bootstrap(%v) ok = %v, want %v", tc.ev, ok, tc.want)
		}
		if ok && st != tc.st {
			t.Fatalf("Bootstrap(%v) = %v, want %v", tc.ev, st, tc.st)
		}
	}
}

func TestReplayCleanStream(t *testing.T) {
	m := New(events.Gen4G)
	evs := []events.Type{
		events.Attach,         // t=0, CONNECTED
		events.Handover,       // t=5
		events.TAU,            // t=6
		events.S1ConnRel,      // t=10, IDLE (CONNECTED sojourn = 10)
		events.TAU,            // t=100
		events.ServiceRequest, // t=200, CONNECTED (IDLE sojourn = 190)
		events.S1ConnRel,      // t=230, IDLE (CONNECTED sojourn = 30)
	}
	ts := []float64{0, 5, 6, 10, 100, 200, 230}
	r := Replay(m, evs, ts)
	if r.Violated() {
		t.Fatalf("clean stream reported violations: %+v", r.Violations)
	}
	if r.Counted != len(evs) || r.Skipped != 0 {
		t.Fatalf("counted %d skipped %d", r.Counted, r.Skipped)
	}
	if len(r.SojournConnected) != 2 || r.SojournConnected[0] != 10 || r.SojournConnected[1] != 30 {
		t.Fatalf("connected sojourns %v, want [10 30]", r.SojournConnected)
	}
	if len(r.SojournIdle) != 1 || r.SojournIdle[0] != 190 {
		t.Fatalf("idle sojourns %v, want [190]", r.SojournIdle)
	}
	if Top(r.Final) != TopIdle {
		t.Fatalf("final state %v, want IDLE", r.Final)
	}
}

func TestReplayViolationHoldsState(t *testing.T) {
	m := New(events.Gen4G)
	evs := []events.Type{
		events.ServiceRequest, // bootstrap → SrvReqS
		events.ServiceRequest, // violation (already connected)
		events.S1ConnRel,      // still valid from SrvReqS
	}
	ts := []float64{0, 1, 2}
	r := Replay(m, evs, ts)
	if len(r.Violations) != 1 {
		t.Fatalf("violations %v, want exactly 1", r.Violations)
	}
	v := r.Violations[0]
	if v.Index != 1 || v.State != SrvReqS || v.Event != events.ServiceRequest {
		t.Fatalf("violation %+v", v)
	}
	if Top(r.Final) != TopIdle {
		t.Fatalf("final %v: the machine must hold state through violations", r.Final)
	}
}

func TestReplaySkipsPreBootstrapEvents(t *testing.T) {
	m := New(events.Gen4G)
	evs := []events.Type{events.TAU, events.TAU, events.ServiceRequest, events.S1ConnRel}
	ts := []float64{0, 10, 20, 30}
	r := Replay(m, evs, ts)
	if r.Skipped != 2 {
		t.Fatalf("skipped %d, want 2 (TAU is not deterministic)", r.Skipped)
	}
	if r.Counted != 2 {
		t.Fatalf("counted %d, want 2", r.Counted)
	}
	if r.Violated() {
		t.Fatal("no violations expected after bootstrap")
	}
}

func TestReplayUnbootstrappableStream(t *testing.T) {
	m := New(events.Gen4G)
	evs := []events.Type{events.TAU, events.TAU}
	r := Replay(m, evs, []float64{0, 1})
	if r.Bootstrapped || r.Counted != 0 || r.Skipped != 2 {
		t.Fatalf("unexpected result %+v", r)
	}
}

func TestAggregateReplay(t *testing.T) {
	m := New(events.Gen4G)
	agg := NewAggregateReplay()
	clean := Replay(m,
		[]events.Type{events.Attach, events.S1ConnRel, events.ServiceRequest},
		[]float64{0, 5, 50})
	dirty := Replay(m,
		[]events.Type{events.ServiceRequest, events.ServiceRequest},
		[]float64{0, 1})
	agg.Add(&clean)
	agg.Add(&dirty)
	if agg.Streams != 2 || agg.ViolatedStreams != 1 {
		t.Fatalf("streams %d violated %d", agg.Streams, agg.ViolatedStreams)
	}
	if agg.StreamViolationRate() != 0.5 {
		t.Fatalf("stream violation rate %v", agg.StreamViolationRate())
	}
	if agg.EventViolationRate() <= 0 {
		t.Fatal("event violation rate should be positive")
	}
	keys, shares := agg.TopViolations(5)
	if len(keys) != 1 || keys[0].Event != events.ServiceRequest {
		t.Fatalf("top violations %v %v", keys, shares)
	}
	if len(agg.MeanConnectedPerUE) != 1 {
		t.Fatalf("per-UE connected means %v", agg.MeanConnectedPerUE)
	}
}

func TestValidEventsMatchesStep(t *testing.T) {
	for _, g := range []events.Generation{events.Gen4G, events.Gen5G} {
		m := New(g)
		for _, s := range m.States() {
			valid := map[events.Type]bool{}
			for _, e := range m.ValidEvents(s) {
				valid[e] = true
			}
			for _, e := range events.Vocabulary(g) {
				_, ok := m.Step(s, e)
				if ok != valid[e] {
					t.Fatalf("%v ValidEvents and Step disagree on (%v, %v)", g, s, e)
				}
			}
		}
	}
}

// Property: from any reachable state, applying any event sequence keeps the
// machine in a reachable, valid state (total function, never panics).
func TestStepTotalityProperty(t *testing.T) {
	m := New(events.Gen4G)
	f := func(raw []uint8) bool {
		s := m.Initial()
		for _, r := range raw {
			e := events.Vocabulary(events.Gen4G)[int(r)%6]
			s, _ = m.Step(s, e)
			if !s.Valid() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: a sequence built by always choosing a valid event never
// produces a violation under Replay.
func TestValidWalksReplayCleanProperty(t *testing.T) {
	m := New(events.Gen4G)
	f := func(seed uint64, n uint8) bool {
		s := SrvReqS // post-ATCH
		evs := []events.Type{events.Attach}
		ts := []float64{0}
		x := seed
		for i := 0; i < int(n%40)+1; i++ {
			choices := m.ValidEvents(s)
			x = x*6364136223846793005 + 1442695040888963407
			e := choices[int(x>>33)%len(choices)]
			evs = append(evs, e)
			ts = append(ts, float64(len(ts)))
			s, _ = m.Step(s, e)
		}
		r := Replay(m, evs, ts)
		return !r.Violated()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
