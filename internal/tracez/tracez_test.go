package tracez

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// withRecorder runs f with a fresh enabled recorder and restores the
// disabled default afterwards, so tests don't leak spans into each other.
func withRecorder(t *testing.T, f func()) {
	t.Helper()
	Reset()
	Enable()
	defer func() {
		Disable()
		Reset()
	}()
	f()
}

func TestDisabledIsInert(t *testing.T) {
	Disable()
	Reset()
	sp := Begin(StageDecodeStep, "r1")
	if sp.Live() {
		t.Fatal("Begin returned a live token while disabled")
	}
	sp.End(10, "attr")
	Record(StageReplayAck, "r1", time.Now(), time.Millisecond, 1, "")
	if got := Snapshot(0); len(got) != 0 {
		t.Fatalf("disabled recorder captured %d spans", len(got))
	}
	if got := Stages(); len(got) != 0 {
		t.Fatalf("disabled recorder aggregated %d stages", len(got))
	}
}

func TestBeginEndRecords(t *testing.T) {
	withRecorder(t, func() {
		sp := Begin(StageScenarioSpill, "run-1")
		if !sp.Live() {
			t.Fatal("enabled Begin returned an inert token")
		}
		sp.End(42, "src-a")
		Record(StageReplayAck, "run-1", time.Now().Add(-time.Second), 250*time.Millisecond, 3, "")

		spans := Snapshot(0)
		if len(spans) != 2 {
			t.Fatalf("got %d spans, want 2", len(spans))
		}
		// Oldest first.
		if spans[0].Stage != StageScenarioSpill || spans[1].Stage != StageReplayAck {
			t.Fatalf("span order/stages wrong: %+v", spans)
		}
		if spans[0].Run != "run-1" || spans[0].N != 42 || spans[0].Attr != "src-a" {
			t.Fatalf("span fields wrong: %+v", spans[0])
		}
		if spans[1].Dur != int64(250*time.Millisecond) {
			t.Fatalf("externally-timed span dur = %d", spans[1].Dur)
		}

		sts := Stages()
		if len(sts) != 2 {
			t.Fatalf("got %d stages, want 2", len(sts))
		}
		// Sorted by name: replay.ack < scenario.spill.
		if sts[0].Stage != StageReplayAck || sts[1].Stage != StageScenarioSpill {
			t.Fatalf("stage order wrong: %+v", sts)
		}
		ack := sts[0]
		if ack.Count != 1 || ack.Items != 3 {
			t.Fatalf("ack aggregate wrong: %+v", ack)
		}
		if ack.TotalSec < 0.24 || ack.TotalSec > 0.26 || ack.MaxSec != ack.TotalSec {
			t.Fatalf("ack timing wrong: %+v", ack)
		}
		if ack.P95Sec < 0.2 || ack.P95Sec > 0.3 {
			t.Fatalf("ack p95 %v outside the 250ms bucket", ack.P95Sec)
		}
	})
}

func TestRingWrap(t *testing.T) {
	withRecorder(t, func() {
		SetCapacity(64) // the minimum
		defer SetCapacity(DefaultCapacity)
		for i := 0; i < 200; i++ {
			Record(StagePacerWait, "", time.Now(), time.Duration(i), int64(i), "")
		}
		spans := Snapshot(0)
		if len(spans) != 64 {
			t.Fatalf("snapshot has %d spans, want ring capacity 64", len(spans))
		}
		// The ring keeps the newest 64 (N = 136..199), oldest first.
		for i, sp := range spans {
			if want := int64(136 + i); sp.N != want {
				t.Fatalf("span %d has N=%d, want %d", i, sp.N, want)
			}
		}
		// But the aggregates saw every span.
		for _, st := range Stages() {
			if st.Stage == StagePacerWait && st.Count != 200 {
				t.Fatalf("aggregate count = %d, want 200", st.Count)
			}
		}
		// Snapshot(max) trims to the most recent max.
		if got := Snapshot(10); len(got) != 10 || got[9].N != 199 {
			t.Fatalf("Snapshot(10) = %d spans ending N=%d", len(got), got[len(got)-1].N)
		}
	})
}

func TestConcurrentRecording(t *testing.T) {
	withRecorder(t, func() {
		const goroutines, per = 8, 500
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					sp := Begin(StageDecodeStep, "")
					sp.End(1, "")
				}
			}()
		}
		// Concurrent readers must never see torn spans.
		for i := 0; i < 50; i++ {
			for _, sp := range Snapshot(100) {
				if sp.Stage != StageDecodeStep {
					t.Errorf("torn/foreign span: %+v", sp)
				}
			}
			Stages()
		}
		wg.Wait()
		for _, st := range Stages() {
			if st.Stage == StageDecodeStep {
				if st.Count != goroutines*per || st.Items != goroutines*per {
					t.Fatalf("aggregate lost spans: %+v", st)
				}
				return
			}
		}
		t.Fatal("decode.step aggregate missing")
	})
}

func TestHandler(t *testing.T) {
	withRecorder(t, func() {
		for i := 0; i < 10; i++ {
			Record(StageScenarioMerge, "run-9", time.Now(), time.Millisecond, 100, "k=4")
		}
		rec := httptest.NewRecorder()
		Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?n=5", nil))
		if rec.Code != 200 {
			t.Fatalf("status %d", rec.Code)
		}
		var resp struct {
			Enabled  bool         `json:"enabled"`
			Capacity int          `json:"capacity"`
			Stages   []StageStats `json:"stages"`
			Spans    []Span       `json:"spans"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
		}
		if !resp.Enabled || resp.Capacity != DefaultCapacity {
			t.Fatalf("header fields wrong: %+v", resp)
		}
		if len(resp.Spans) != 5 {
			t.Fatalf("?n=5 returned %d spans", len(resp.Spans))
		}
		if len(resp.Stages) != 1 || resp.Stages[0].Stage != StageScenarioMerge || resp.Stages[0].Count != 10 {
			t.Fatalf("stages wrong: %+v", resp.Stages)
		}
	})
}

func TestSummary(t *testing.T) {
	withRecorder(t, func() {
		if got := Summary(); got != "tracez: no spans recorded\n" {
			t.Fatalf("empty summary = %q", got)
		}
		Record(StagePacerWindow, "", time.Now(), time.Second, 1000, "")
		got := Summary()
		for _, want := range []string{"stage", "pacer.window", "1000"} {
			if !strings.Contains(got, want) {
				t.Fatalf("summary missing %q:\n%s", want, got)
			}
		}
	})
}
