// Package tracez is the pipeline's always-on flight recorder: a
// fixed-capacity lock-free ring buffer of spans (stage, run id, start,
// duration, payload count) plus per-stage duration aggregates, cheap enough
// to leave compiled into every hot path. The scenario pipeline, the CPT-GPT
// batch decoder, the pacer, the replay transport and the serving daemon all
// record here, so "why is my run lagging?" is answerable after the fact
// from GET /debug/trace (daemon) or a -trace summary dump (batch CLIs).
//
// Concurrency contract: when disabled (the default for batch CLIs),
// Begin/Record cost one atomic load and record nothing. When enabled,
// recording a span is one time.Now, one allocation, one atomic fetch-add to
// claim a ring slot, one atomic pointer store, and a handful of atomic adds
// for the stage aggregate — bounded, allocation-light, and safe from any
// number of goroutines. The ring overwrites oldest spans; Snapshot and
// Handler read concurrently with writers and may observe a slot mid-wrap
// (they see the newer span — never a torn one, since slots hold atomic
// pointers to immutable spans). Enable/Disable/SetCapacity/Reset are
// setup-path operations.
//
// Stage names are dotted hierarchies ("scenario.spill", "decode.step");
// the Stage* constants below are the instrumented set.
package tracez

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cptgpt/internal/telemetry"
)

// Instrumented stage names. Call sites may also record ad-hoc stages; these
// constants are the set the docs, the /debug/trace walkthrough and the CI
// smoke assert on.
const (
	StageScenarioSource  = "scenario.source"  // one source chunk generated
	StageScenarioOps     = "scenario.ops"     // operator rewrite of one chunk
	StageScenarioSpill   = "scenario.spill"   // sort + spill one sorted run
	StageScenarioMerge   = "scenario.merge"   // one k-way merge pass
	StageScenarioSink    = "scenario.sink"    // one sink drain, end to end
	StagePacerWait       = "pacer.wait"       // one pacer release wait
	StagePacerWindow     = "pacer.window"     // one achieved-rate window
	StagePacerShed       = "pacer.shed"       // one load-shedding burst (n = shed releases)
	StageDecodeStep      = "decode.step"      // one BatchDecoder.Step
	StageDecodeStepK     = "decode.stepk"     // one BatchDecoder.StepK
	StageDecodeDraft     = "decode.draft"     // speculative draft proposal phase
	StageDecodeVerify    = "decode.verify"    // speculative acceptance phase
	StageReplayAck       = "replay.ack"       // one ACK fold (dur = RTT sample)
	StageReplayReconnect = "replay.reconnect" // one reconnect-and-resume
	StageRunGenerate     = "run.generate"     // served run: open scenario stream
	StageRunStream       = "run.stream"       // served run: drain through sink
	StageRunState        = "run.state"        // served run state transition (dur 0)
	StageRunlogAppend    = "runlog.append"    // one write-ahead journal append
	StageRunRecover      = "run.recover"      // served run: crash-recovery resume
	StageRunQueued       = "run.queued"       // served run: admission-queue wait
	StageSinkBreaker     = "sink.breaker"     // one sink circuit-breaker open interval
)

// Span is one recorded event: a stage, an optional run id, wall-clock start
// and duration in nanoseconds, an optional payload count N (events, tokens,
// slots — stage-dependent) and an optional free-form attribute.
type Span struct {
	Stage string `json:"stage"`
	Run   string `json:"run,omitempty"`
	Start int64  `json:"start_unix_nano"`
	Dur   int64  `json:"dur_nanos"`
	N     int64  `json:"n,omitempty"`
	Attr  string `json:"attr,omitempty"`
}

// DefaultCapacity is the span ring size until SetCapacity is called.
const DefaultCapacity = 8192

type ringBuf struct {
	slots []atomic.Pointer[Span]
	head  atomic.Uint64 // next slot to claim; slot i lives at i % len(slots)
}

func newRing(capacity int) *ringBuf {
	if capacity < 64 {
		capacity = 64
	}
	return &ringBuf{slots: make([]atomic.Pointer[Span], capacity)}
}

var (
	enabled atomic.Bool
	ring    atomic.Pointer[ringBuf]
	stages  sync.Map // stage name -> *stageAgg
)

func init() { ring.Store(newRing(DefaultCapacity)) }

// stageAgg accumulates per-stage duration statistics: count, item total,
// duration sum/max, and a log-bucketed histogram for percentiles.
type stageAgg struct {
	count atomic.Int64
	items atomic.Int64
	sum   atomic.Int64 // nanoseconds
	max   atomic.Int64 // nanoseconds
	hist  *telemetry.Histogram
}

func stageFor(name string) *stageAgg {
	if v, ok := stages.Load(name); ok {
		return v.(*stageAgg)
	}
	v, _ := stages.LoadOrStore(name, &stageAgg{hist: telemetry.NewHistogram(telemetry.LatencyBuckets)})
	return v.(*stageAgg)
}

// Enable turns the flight recorder on. The daemon enables it at startup;
// batch CLIs enable it behind -trace.
func Enable() { enabled.Store(true) }

// Disable turns the flight recorder off; in-flight Active tokens become
// no-ops at End.
func Disable() { enabled.Store(false) }

// Enabled reports whether spans are being recorded: one atomic load, the
// entire disabled-path cost.
func Enabled() bool { return enabled.Load() }

// SetCapacity replaces the span ring with an empty one of the given
// capacity (min 64). Setup-path only: spans recorded concurrently with the
// swap may land in either ring.
func SetCapacity(capacity int) { ring.Store(newRing(capacity)) }

// Reset clears the ring and all stage aggregates (tests, or a CLI starting
// a fresh measurement).
func Reset() {
	ring.Store(newRing(len(ring.Load().slots)))
	stages.Range(func(k, _ any) bool { stages.Delete(k); return true })
}

func record(sp *Span) {
	rb := ring.Load()
	idx := rb.head.Add(1) - 1
	rb.slots[idx%uint64(len(rb.slots))].Store(sp)
	agg := stageFor(sp.Stage)
	agg.count.Add(1)
	agg.items.Add(sp.N)
	agg.sum.Add(sp.Dur)
	for {
		old := agg.max.Load()
		if sp.Dur <= old || agg.max.CompareAndSwap(old, sp.Dur) {
			break
		}
	}
	agg.hist.Observe(float64(sp.Dur) / 1e9)
}

// Active is a begun span: a stack-allocated token, not a pointer. The zero
// Active (returned by Begin when disabled) makes End a no-op.
type Active struct {
	stage string
	run   string
	start int64
}

// Begin starts a span for stage (run may be ""). When the recorder is
// disabled this is one atomic load and returns an inert token.
func Begin(stage, run string) Active {
	if !enabled.Load() {
		return Active{}
	}
	return Active{stage: stage, run: run, start: time.Now().UnixNano()}
}

// Live reports whether the token will record on End — for call sites that
// want to skip computing N/attr when tracing is off.
func (a Active) Live() bool { return a.start != 0 }

// End records the span with payload count n and attribute attr. No-op on
// an inert token or if the recorder was disabled after Begin.
func (a Active) End(n int64, attr string) {
	if a.start == 0 || !enabled.Load() {
		return
	}
	record(&Span{Stage: a.stage, Run: a.run, Start: a.start, Dur: time.Now().UnixNano() - a.start, N: n, Attr: attr})
}

// Record logs a span whose timing was measured externally (e.g. a replay
// RTT sample, where the duration is the transport's own estimate).
func Record(stage, run string, start time.Time, dur time.Duration, n int64, attr string) {
	if !enabled.Load() {
		return
	}
	record(&Span{Stage: stage, Run: run, Start: start.UnixNano(), Dur: int64(dur), N: n, Attr: attr})
}

// Snapshot returns up to max of the most recent spans, oldest first. It
// reads concurrently with writers; spans overwritten mid-read appear as
// their newer replacement.
func Snapshot(max int) []Span {
	rb := ring.Load()
	head := rb.head.Load()
	n := uint64(len(rb.slots))
	if head < n {
		n = head
	}
	if max > 0 && uint64(max) < n {
		n = uint64(max)
	}
	out := make([]Span, 0, n)
	for i := head - n; i < head; i++ {
		if p := rb.slots[i%uint64(len(rb.slots))].Load(); p != nil {
			out = append(out, *p)
		}
	}
	return out
}

// StageStats is the rendered aggregate for one stage.
type StageStats struct {
	Stage    string  `json:"stage"`
	Count    int64   `json:"count"`
	Items    int64   `json:"items,omitempty"` // sum of span N payloads
	TotalSec float64 `json:"total_sec"`
	MeanSec  float64 `json:"mean_sec"`
	MaxSec   float64 `json:"max_sec"`
	P50Sec   float64 `json:"p50_sec"`
	P95Sec   float64 `json:"p95_sec"`
	P99Sec   float64 `json:"p99_sec"`
}

// Stages returns per-stage aggregates sorted by stage name.
func Stages() []StageStats {
	var out []StageStats
	stages.Range(func(k, v any) bool {
		agg := v.(*stageAgg)
		n := agg.count.Load()
		if n == 0 {
			return true
		}
		st := StageStats{
			Stage:    k.(string),
			Count:    n,
			Items:    agg.items.Load(),
			TotalSec: float64(agg.sum.Load()) / 1e9,
			MaxSec:   float64(agg.max.Load()) / 1e9,
			P50Sec:   agg.hist.Quantile(0.50),
			P95Sec:   agg.hist.Quantile(0.95),
			P99Sec:   agg.hist.Quantile(0.99),
		}
		st.MeanSec = st.TotalSec / float64(n)
		out = append(out, st)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Stage < out[j].Stage })
	return out
}

func fmtDur(sec float64) string {
	return time.Duration(sec * 1e9).Round(time.Microsecond).String()
}

// Summary renders the per-stage aggregates as an aligned text table — what
// the batch CLIs print to stderr under -trace.
func Summary() string {
	sts := Stages()
	if len(sts) == 0 {
		return "tracez: no spans recorded\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %10s %12s %12s %12s %12s %12s %12s\n",
		"stage", "count", "items", "total", "mean", "p95", "p99", "max")
	for _, st := range sts {
		fmt.Fprintf(&b, "%-20s %10d %12d %12s %12s %12s %12s %12s\n",
			st.Stage, st.Count, st.Items,
			fmtDur(st.TotalSec), fmtDur(st.MeanSec),
			fmtDur(st.P95Sec), fmtDur(st.P99Sec), fmtDur(st.MaxSec))
	}
	return b.String()
}

// Handler serves the flight recorder as JSON: {enabled, capacity, stages,
// spans}. ?n= caps the span count (default 256, max the ring capacity).
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n := 256
		if s := req.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				n = v
			}
		}
		resp := struct {
			Enabled  bool         `json:"enabled"`
			Capacity int          `json:"capacity"`
			Stages   []StageStats `json:"stages"`
			Spans    []Span       `json:"spans"`
		}{
			Enabled:  Enabled(),
			Capacity: len(ring.Load().slots),
			Stages:   Stages(),
			Spans:    Snapshot(n),
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(resp)
	})
}
