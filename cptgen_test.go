package cptgen

import (
	"path/filepath"
	"testing"

	"cptgpt/internal/events"
)

// TestFacadePipeline exercises the public API end-to-end the way the
// quickstart example does: ground truth → train → generate → evaluate →
// save/load → downstream MCN consumers.
func TestFacadePipeline(t *testing.T) {
	gtCfg := DefaultGroundTruthConfig()
	gtCfg.UEs = map[events.DeviceType]int{Phone: 120}
	gtCfg.Hours = 1
	real, err := GenerateGroundTruth(gtCfg)
	if err != nil {
		t.Fatal(err)
	}
	if real.NumStreams() == 0 {
		t.Fatal("empty ground truth")
	}

	cfg := DefaultCPTGPTConfig()
	cfg.Epochs = 3
	model, err := TrainCPTGPT(real, cfg, CPTGPTTrainOpts{})
	if err != nil {
		t.Fatal(err)
	}
	synth, err := model.Generate(CPTGPTGenOpts{NumStreams: 60, Device: Phone, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	f := Evaluate(real, synth)
	if f.EventViolation < 0 || f.FlowLenMaxY < 0 || f.FlowLenMaxY > 1 {
		t.Fatalf("implausible fidelity: %+v", f)
	}

	// Model persistence through the facade.
	path := filepath.Join(t.TempDir(), "model.bin")
	if err := model.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCPTGPT(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumParams() != model.NumParams() {
		t.Fatal("loaded model differs")
	}

	// Trace persistence.
	tracePath := filepath.Join(t.TempDir(), "synth.jsonl")
	if err := SaveTrace(tracePath, synth); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTrace(tracePath, Gen4G)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEvents() != synth.NumEvents() {
		t.Fatal("trace round trip lost events")
	}

	// Downstream: virtual-time MCN.
	rep, err := SimulateMCN(synth, DefaultMCNConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events != synth.NumEvents() {
		t.Fatalf("MCN processed %d of %d events", rep.Events, synth.NumEvents())
	}

	// Downstream: TCP replay.
	srv, err := ListenMCN("127.0.0.1:0", Gen4G)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	stats, err := ReplayOverTCP(srv.Addr().String(), synth, ReplayOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events != synth.NumEvents() {
		t.Fatalf("TCP replay delivered %d of %d events", stats.Events, synth.NumEvents())
	}
}

// TestSpeculativeThroughFacade covers the exported speculative-decoding
// surface: the speculative knobs on CPTGPTGenOpts, the decode-stats
// telemetry, and both draft constructors (n-gram from training data, SMM
// baseline adapter) on a trained model — where acceptance should be
// healthy, since draft and target learned the same data.
func TestSpeculativeThroughFacade(t *testing.T) {
	gtCfg := DefaultGroundTruthConfig()
	gtCfg.UEs = map[events.DeviceType]int{Phone: 120}
	gtCfg.Hours = 1
	real, err := GenerateGroundTruth(gtCfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultCPTGPTConfig()
	cfg.Epochs = 3
	model, err := TrainCPTGPT(real, cfg, CPTGPTTrainOpts{})
	if err != nil {
		t.Fatal(err)
	}

	sm, err := FitSMM(real, DefaultSMMConfig())
	if err != nil {
		t.Fatal(err)
	}
	smmDraft, err := NewSMMDraft(sm, model)
	if err != nil {
		t.Fatal(err)
	}
	for name, draft := range map[string]CPTGPTDraftModel{
		"self":  nil,
		"ngram": NewNGramDraft(real, model),
		"smm":   smmDraft,
	} {
		var st CPTGPTDecodeStats
		synth, err := model.Generate(CPTGPTGenOpts{
			NumStreams: 50, Device: Phone, Seed: 7, Precision: PrecisionF32,
			Speculative: true, DraftTokens: DefaultDraftTokens, DraftModel: draft, Stats: &st,
		})
		if err != nil {
			t.Fatal(err)
		}
		if synth.NumStreams() != 50 {
			t.Fatalf("%s: generated %d streams", name, synth.NumStreams())
		}
		if st.DraftProposed == 0 || st.DraftAccepted > st.DraftProposed {
			t.Fatalf("%s: implausible stats %+v", name, st)
		}
		t.Logf("%s draft: %.1f%% acceptance (%d/%d)", name,
			100*float64(st.DraftAccepted)/float64(st.DraftProposed), st.DraftAccepted, st.DraftProposed)
	}
}

// TestBaselinesThroughFacade covers SMM and NetShare construction.
func TestBaselinesThroughFacade(t *testing.T) {
	gtCfg := DefaultGroundTruthConfig()
	gtCfg.UEs = map[events.DeviceType]int{Phone: 100}
	gtCfg.Hours = 1
	real, err := GenerateGroundTruth(gtCfg)
	if err != nil {
		t.Fatal(err)
	}

	smmCfg := DefaultSMMConfig()
	smmCfg.K = 4
	smmModel, err := FitSMM(real, smmCfg)
	if err != nil {
		t.Fatal(err)
	}
	smmGen, err := smmModel.Generate(SMMGenOpts{NumStreams: 50, Device: Phone, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ReplayStats(smmGen).ViolatingEvents != 0 {
		t.Fatal("SMM output must be violation-free")
	}

	nsCfg := DefaultNetShareConfig()
	nsCfg.Epochs = 2
	nsModel, err := TrainNetShare(real, nsCfg, NetShareTrainOpts{})
	if err != nil {
		t.Fatal(err)
	}
	nsGen, err := nsModel.Generate(NetShareGenOpts{NumStreams: 50, Device: Phone, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if nsGen.NumStreams() != 50 {
		t.Fatal("NetShare generation failed")
	}

	// Memorization audit through the facade.
	mem, err := Memorization(smmGen, real, 10, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if mem.Rate() < 0 || mem.Rate() > 1 {
		t.Fatalf("memorization rate %v", mem.Rate())
	}
}

// TestFineTuneThroughFacade covers the transfer-learning path.
func TestFineTuneThroughFacade(t *testing.T) {
	gtCfg := DefaultGroundTruthConfig()
	gtCfg.UEs = map[events.DeviceType]int{Phone: 80}
	gtCfg.Hours = 2
	gtCfg.StartHour = 7
	full, err := GenerateGroundTruth(gtCfg)
	if err != nil {
		t.Fatal(err)
	}
	h0, h1 := full.SliceHour(0), full.SliceHour(1)

	cfg := DefaultCPTGPTConfig()
	cfg.Epochs = 2
	base, err := TrainCPTGPT(h0, cfg, CPTGPTTrainOpts{})
	if err != nil {
		t.Fatal(err)
	}
	adapted, err := FineTuneCPTGPT(base, h1, CPTGPTTrainOpts{Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if adapted == base {
		t.Fatal("FineTuneCPTGPT must return an independent model")
	}
	// The base must be untouched by the fine-tune.
	if base.Params()[0].Data[0] == adapted.Params()[0].Data[0] &&
		base.Params()[2].Data[0] == adapted.Params()[2].Data[0] {
		t.Log("fine-tune left first params identical (possible but unlikely)")
	}
}

// TestScenarioFacade drives the scenario engine through the root API: a
// built-in spec, JSON round trip, the count sink and the MCN sink, plus a
// custom source binding (an SMM model plugging in as a ChunkFunc).
func TestScenarioFacade(t *testing.T) {
	names := BuiltinScenarios()
	if len(names) < 6 {
		t.Fatalf("only %d built-in scenarios: %v", len(names), names)
	}
	spec, err := BuiltinScenario("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := spec.Save(path); err != nil {
		t.Fatal(err)
	}
	if spec, err = LoadScenario(path); err != nil {
		t.Fatal(err)
	}

	sum, err := RunScenario(spec, ScenarioRunOpts{UEs: 200})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Events == 0 {
		t.Fatal("scenario emitted nothing")
	}
	rep, err := RunScenarioMCN(spec, ScenarioRunOpts{UEs: 200}, DefaultMCNConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events != sum.Events {
		t.Fatalf("MCN saw %d events, count sink saw %d", rep.Events, sum.Events)
	}

	// An SMM model binds into a spec as a custom source.
	gt, err := GenerateGroundTruth(GroundTruthConfig{
		Generation: Gen4G, Seed: 2,
		UEs:   map[DeviceType]int{Phone: 80},
		Hours: 1, StartHour: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	smmModel, err := FitSMM(gt, DefaultSMMConfig())
	if err != nil {
		t.Fatal(err)
	}
	custom := &ScenarioSpec{
		Name: "smm-driven", Generation: "4G", Seed: 3, HorizonSec: 3600, Population: 50,
		Sources: []ScenarioSource{{ID: "smm", Kind: "custom", Share: 1}},
	}
	genOpts := SMMGenOpts{Device: Phone, Seed: 4, StartWindow: 1800}
	sum2, err := RunScenario(custom, ScenarioRunOpts{Sources: map[string]ScenarioChunkFunc{
		"smm": func(lo, hi int) ([]Stream, error) { return smmModel.GenerateRange(lo, hi, genOpts) },
	}})
	if err != nil {
		t.Fatal(err)
	}
	if sum2.Events == 0 {
		t.Fatal("SMM-driven scenario emitted nothing")
	}
}
